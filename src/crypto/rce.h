// Random convergent encryption (RCE) — Bellare et al.'s MLE variant that
// encrypts each chunk under a fresh random key, wrapping the key under the
// content-derived MLE key, and attaches a deterministic tag for duplicate
// detection.
//
// The paper (Section 8) argues RCE does not stop frequency analysis: the
// ciphertext *bodies* are randomized, but the dedup tags are deterministic,
// so an adversary simply counts tags instead of ciphertexts. The
// `abl_rce_tags` bench demonstrates this with the same attacks.
#pragma once

#include "common/fingerprint.h"
#include "common/rng.h"
#include "crypto/mle.h"

namespace freqdedup {

struct RceCiphertext {
  ByteVec body;        // chunk encrypted under a random key
  ByteVec wrappedKey;  // random key encrypted under the MLE key
  Fp tag = 0;          // deterministic tag = fingerprint(plaintext)
};

class RceScheme {
 public:
  /// Randomness source is injected for reproducibility; the underlying MLE
  /// scheme provides the key-wrapping key and must outlive this object.
  RceScheme(const MleScheme& mle, Rng& rng);

  [[nodiscard]] RceCiphertext encrypt(ByteView plaintext) const;

  /// Decrypts given the plaintext-derived MLE key.
  [[nodiscard]] ByteVec decrypt(const RceCiphertext& ct,
                                const AesKey& mleKey) const;

 private:
  const MleScheme* mle_;
  Rng* rng_;
};

}  // namespace freqdedup
