// Message-locked encryption schemes (Section 2.2).
//
// An MLE scheme derives the symmetric key from the chunk content itself, so
// identical plaintext chunks yield identical ciphertext chunks and remain
// deduplicable. Two instantiations:
//  - ConvergentEncryption: key = SHA-256(chunk) — the classical MLE [22].
//  - ServerAidedMle: key = KeyManager HMAC over the chunk fingerprint
//    (DupLESS [12]); secure even for predictable chunks while the key
//    manager's secret is safe.
// Both are deterministic — which is precisely the property the paper's
// frequency-analysis attacks exploit.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/fingerprint.h"
#include "crypto/aes.h"
#include "crypto/key_manager.h"

namespace freqdedup {

class MleScheme {
 public:
  virtual ~MleScheme() = default;

  /// Derives the content-locked key for a plaintext chunk.
  [[nodiscard]] virtual AesKey deriveKey(ByteView plaintext) const = 0;

  /// Deterministic encryption under the content-locked key.
  [[nodiscard]] ByteVec encrypt(ByteView plaintext) const;

  /// Encryption under an externally supplied key (e.g. a segment key).
  [[nodiscard]] static ByteVec encryptWithKey(const AesKey& key,
                                              ByteView plaintext);

  /// Decryption under the stored per-chunk key.
  [[nodiscard]] static ByteVec decryptWithKey(const AesKey& key,
                                              ByteView ciphertext);
};

/// Convergent encryption: key = SHA-256(plaintext).
class ConvergentEncryption final : public MleScheme {
 public:
  [[nodiscard]] AesKey deriveKey(ByteView plaintext) const override;
};

/// Server-aided MLE: key = KeyManager(fingerprint(plaintext)).
class ServerAidedMle final : public MleScheme {
 public:
  /// The key manager must outlive this scheme.
  explicit ServerAidedMle(const KeyManager& keyManager);

  [[nodiscard]] AesKey deriveKey(ByteView plaintext) const override;

 private:
  const KeyManager* keyManager_;
};

}  // namespace freqdedup
