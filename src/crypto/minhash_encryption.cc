#include "crypto/minhash_encryption.h"

#include "common/check.h"

namespace freqdedup {

MinHashEncryptor::MinHashEncryptor(const KeyManager& keyManager,
                                   SegmentParams segmentParams)
    : keyManager_(&keyManager), segmentParams_(segmentParams) {}

MinHashEncryptionResult MinHashEncryptor::encrypt(
    const std::vector<ByteVec>& plainChunks) const {
  MinHashEncryptionResult result;
  result.chunks.reserve(plainChunks.size());

  // Fingerprint every chunk first; segmentation operates on (fp, size).
  std::vector<ChunkRecord> records;
  records.reserve(plainChunks.size());
  for (const auto& chunk : plainChunks) {
    records.push_back(
        {fpOfContent(chunk), static_cast<uint32_t>(chunk.size())});
  }
  result.segments = segmentRecords(records, segmentParams_);

  for (size_t s = 0; s < result.segments.size(); ++s) {
    const Segment& seg = result.segments[s];
    const Fp minFp = segmentMinFingerprint(records, seg);
    const AesKey segKey = keyManager_->deriveSegmentKey(minFp);
    for (size_t i = seg.begin; i < seg.end; ++i) {
      MinHashEncryptedChunk out;
      out.key = segKey;
      out.plainFp = records[i].fp;
      out.ciphertext = MleScheme::encryptWithKey(segKey, plainChunks[i]);
      out.cipherFp = fpOfContent(out.ciphertext);
      out.segmentIndex = s;
      result.chunks.push_back(std::move(out));
    }
  }
  FDD_CHECK(result.chunks.size() == plainChunks.size());
  return result;
}

ByteVec MinHashEncryptor::decrypt(const MinHashEncryptedChunk& chunk) {
  return MleScheme::decryptWithKey(chunk.key, chunk.ciphertext);
}

}  // namespace freqdedup
