#include "crypto/key_manager.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace freqdedup {

RateLimiter::RateLimiter(double ratePerSec, double burst)
    : ratePerSec_(ratePerSec), burst_(burst), tokens_(burst) {
  FDD_CHECK(ratePerSec > 0.0);
  FDD_CHECK(burst >= 1.0);
}

void RateLimiter::refill(uint64_t nowMicros) {
  if (nowMicros <= lastMicros_) return;
  const double elapsedSec =
      static_cast<double>(nowMicros - lastMicros_) / 1e6;
  tokens_ = std::min(burst_, tokens_ + elapsedSec * ratePerSec_);
  lastMicros_ = nowMicros;
}

bool RateLimiter::tryAcquire(uint64_t nowMicros) {
  refill(nowMicros);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double RateLimiter::availableTokens(uint64_t nowMicros) const {
  if (nowMicros <= lastMicros_) return tokens_;
  const double elapsedSec =
      static_cast<double>(nowMicros - lastMicros_) / 1e6;
  return std::min(burst_, tokens_ + elapsedSec * ratePerSec_);
}

KeyManager::KeyManager(ByteVec globalSecret)
    : secret_(std::move(globalSecret)) {
  FDD_CHECK_MSG(!secret_.empty(), "key manager needs a non-empty secret");
}

KeyManager::KeyManager(ByteVec globalSecret, double ratePerSec, double burst)
    : secret_(std::move(globalSecret)),
      limiter_(RateLimiter(ratePerSec, burst)) {
  FDD_CHECK_MSG(!secret_.empty(), "key manager needs a non-empty secret");
}

AesKey KeyManager::derive(ByteView domain, Fp fp) const {
  ByteVec msg(domain.begin(), domain.end());
  putU64(msg, fp);
  const Digest d = hmacSha256(secret_, msg);
  AesKey key{};
  std::copy(d.bytes.begin(), d.bytes.begin() + kAesKeyBytes, key.begin());
  return key;
}

AesKey KeyManager::deriveChunkKey(Fp fingerprint) const {
  return derive(toBytes("chunk-key"), fingerprint);
}

AesKey KeyManager::deriveSegmentKey(Fp minFingerprint) const {
  return derive(toBytes("segment-key"), minFingerprint);
}

std::optional<AesKey> KeyManager::requestChunkKey(Fp fingerprint,
                                                  uint64_t nowMicros) {
  if (limiter_ && !limiter_->tryAcquire(nowMicros)) {
    ++stats_.throttled;
    return std::nullopt;
  }
  ++stats_.served;
  return deriveChunkKey(fingerprint);
}

std::optional<AesKey> KeyManager::requestSegmentKey(Fp minFingerprint,
                                                    uint64_t nowMicros) {
  if (limiter_ && !limiter_->tryAcquire(nowMicros)) {
    ++stats_.throttled;
    return std::nullopt;
  }
  ++stats_.served;
  return deriveSegmentKey(minFingerprint);
}

}  // namespace freqdedup
