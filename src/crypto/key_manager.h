// Server-aided MLE key manager (DupLESS-style; Section 2.2).
//
// Derives chunk keys as HMAC-SHA-256(global secret, fingerprint) so that,
// without the secret, ciphertext chunks look encrypted under random keys —
// defeating offline brute-force attacks on predictable chunks. A token-bucket
// rate limiter models DupLESS's throttling of online brute-force attacks.
// The clock is injected (microsecond timestamps supplied by the caller) so
// that throttling behaviour is deterministic and unit-testable.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/fingerprint.h"
#include "crypto/aes.h"

namespace freqdedup {

/// Token-bucket rate limiter with caller-supplied time.
class RateLimiter {
 public:
  /// `ratePerSec` tokens accrue per second up to `burst` capacity.
  RateLimiter(double ratePerSec, double burst);

  /// Attempts to take one token at time `nowMicros`. Monotonic time expected.
  bool tryAcquire(uint64_t nowMicros);

  [[nodiscard]] double availableTokens(uint64_t nowMicros) const;

 private:
  void refill(uint64_t nowMicros);

  double ratePerSec_;
  double burst_;
  double tokens_;
  uint64_t lastMicros_ = 0;
};

struct KeyManagerStats {
  uint64_t served = 0;
  uint64_t throttled = 0;
};

class KeyManager {
 public:
  /// An unthrottled key manager (rate limiting disabled).
  explicit KeyManager(ByteVec globalSecret);

  /// A throttled key manager.
  KeyManager(ByteVec globalSecret, double ratePerSec, double burst);

  /// Chunk-key request as an authenticated client would issue it. Returns
  /// nullopt when throttled.
  std::optional<AesKey> requestChunkKey(Fp fingerprint, uint64_t nowMicros);

  /// Segment-key request for MinHash encryption: keyed by the segment's
  /// minimum fingerprint (Algorithm 4, line 6). Subject to the same limiter;
  /// the paper notes segments are far fewer than chunks, so the load on the
  /// key manager drops accordingly.
  std::optional<AesKey> requestSegmentKey(Fp minFingerprint,
                                          uint64_t nowMicros);

  /// Key derivation without throttling (trusted-path use: tests, recipes).
  [[nodiscard]] AesKey deriveChunkKey(Fp fingerprint) const;
  [[nodiscard]] AesKey deriveSegmentKey(Fp minFingerprint) const;

  [[nodiscard]] const KeyManagerStats& stats() const { return stats_; }

 private:
  [[nodiscard]] AesKey derive(ByteView domain, Fp fp) const;

  ByteVec secret_;
  std::optional<RateLimiter> limiter_;
  KeyManagerStats stats_;
};

}  // namespace freqdedup
