#include "crypto/rce.h"

#include "common/check.h"

namespace freqdedup {

RceScheme::RceScheme(const MleScheme& mle, Rng& rng)
    : mle_(&mle), rng_(&rng) {}

RceCiphertext RceScheme::encrypt(ByteView plaintext) const {
  AesKey randomKey{};
  for (size_t i = 0; i < randomKey.size(); i += 8) {
    const uint64_t word = rng_->next();
    for (size_t j = 0; j < 8; ++j)
      randomKey[i + j] = static_cast<uint8_t>(word >> (8 * j));
  }
  RceCiphertext ct;
  ct.body = MleScheme::encryptWithKey(randomKey, plaintext);
  const AesKey mleKey = mle_->deriveKey(plaintext);
  ct.wrappedKey = MleScheme::encryptWithKey(
      mleKey, ByteView(randomKey.data(), randomKey.size()));
  ct.tag = fpOfContent(plaintext);
  return ct;
}

ByteVec RceScheme::decrypt(const RceCiphertext& ct,
                           const AesKey& mleKey) const {
  const ByteVec keyBytes = MleScheme::decryptWithKey(mleKey, ct.wrappedKey);
  FDD_CHECK(keyBytes.size() == kAesKeyBytes);
  AesKey randomKey{};
  std::copy(keyBytes.begin(), keyBytes.end(), randomKey.begin());
  return MleScheme::decryptWithKey(randomKey, ct.body);
}

}  // namespace freqdedup
