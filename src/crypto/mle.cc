#include "crypto/mle.h"

#include "common/check.h"
#include "common/hash.h"

namespace freqdedup {

ByteVec MleScheme::encrypt(ByteView plaintext) const {
  return encryptWithKey(deriveKey(plaintext), plaintext);
}

ByteVec MleScheme::encryptWithKey(const AesKey& key, ByteView plaintext) {
  return aesCtrEncrypt(key, deterministicIv(key), plaintext);
}

ByteVec MleScheme::decryptWithKey(const AesKey& key, ByteView ciphertext) {
  return aesCtrDecrypt(key, deterministicIv(key), ciphertext);
}

AesKey ConvergentEncryption::deriveKey(ByteView plaintext) const {
  const Digest d = sha256(plaintext);
  AesKey key{};
  std::copy(d.bytes.begin(), d.bytes.begin() + kAesKeyBytes, key.begin());
  return key;
}

ServerAidedMle::ServerAidedMle(const KeyManager& keyManager)
    : keyManager_(&keyManager) {}

AesKey ServerAidedMle::deriveKey(ByteView plaintext) const {
  return keyManager_->deriveChunkKey(fpOfContent(plaintext));
}

}  // namespace freqdedup
