// Content-addressed chunk store with container packing.
//
// Stores ciphertext chunks deduplicated by ciphertext fingerprint, packed
// into containers, with a fingerprint index mapping each stored fingerprint
// to its container and entry. Two modes:
//  - in-memory (default): containers and index live in RAM — used by tests
//    and the trace-driven experiments that need real bytes;
//  - persistent: containers are files under <dir>/containers and the index
//    and recipes live in a LogKv at <dir>/index.log — used by the
//    backup_system example. Reopening the directory recovers all state.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/fingerprint.h"
#include "common/lru_cache.h"
#include "kvstore/kvstore.h"
#include "storage/container.h"

namespace freqdedup {

struct BackupStoreStats {
  uint64_t logicalPuts = 0;
  uint64_t logicalBytes = 0;
  uint64_t uniqueChunks = 0;
  uint64_t storedBytes = 0;

  [[nodiscard]] double dedupRatio() const {
    return storedBytes == 0 ? 0.0
                            : static_cast<double>(logicalBytes) /
                                  static_cast<double>(storedBytes);
  }
};

class BackupStore {
 public:
  /// In-memory store.
  BackupStore();

  /// Persistent store rooted at `dir` (created if missing); recovers any
  /// existing state.
  explicit BackupStore(const std::string& dir,
                       uint64_t containerBytes = kDefaultContainerBytes);

  ~BackupStore();
  BackupStore(const BackupStore&) = delete;
  BackupStore& operator=(const BackupStore&) = delete;

  /// True if a ciphertext chunk with this fingerprint is already stored.
  [[nodiscard]] bool hasChunk(Fp cipherFp) const;

  /// Stores a chunk unless already present (deduplication). Returns true if
  /// the chunk was new.
  bool putChunk(Fp cipherFp, ByteView bytes);

  /// Retrieves a chunk's bytes; throws std::runtime_error if absent.
  ByteVec getChunk(Fp cipherFp);

  /// Named metadata blobs (sealed recipes).
  void putBlob(const std::string& name, ByteView bytes);
  std::optional<ByteVec> getBlob(const std::string& name);
  [[nodiscard]] std::vector<std::string> listBlobs();

  /// Seals the open container and persists it (persistent mode).
  void flush();

  [[nodiscard]] const BackupStoreStats& stats() const { return stats_; }
  [[nodiscard]] size_t containerCount() const { return nextContainerId_; }

 private:
  struct ChunkLocation {
    uint32_t containerId = 0;
    uint32_t entryIndex = 0;
  };

  void loadPersistentState();
  void sealOpenContainer();
  [[nodiscard]] std::string containerPath(uint32_t id) const;
  const Container& loadContainer(uint32_t id);
  static ByteVec chunkKey(Fp fp);

  std::string dir_;  // empty in in-memory mode
  uint64_t containerBytes_;
  std::unique_ptr<KvStore> index_;
  ContainerBuilder builder_;
  std::unordered_map<Fp, ByteVec, FpHash> openChunks_;  // not yet sealed
  std::unordered_map<uint32_t, Container> containers_;  // in-memory / cache
  uint32_t nextContainerId_ = 0;
  BackupStoreStats stats_;
};

}  // namespace freqdedup
