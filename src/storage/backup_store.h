// Content-addressed chunk store with container packing.
//
// `BackupStore` is the storage interface the backup client (BackupManager)
// writes through: ciphertext chunks deduplicated by ciphertext fingerprint
// and packed into containers, named metadata blobs (sealed recipes), and
// per-backup reference manifests that drive deletion and garbage collection.
//
// Two backends implement it (pick one with makeBackupStore):
//  - MemBackupStore: containers and index live in RAM — tests and the
//    trace-driven experiments that need real bytes;
//  - FileBackupStore: containers are CRC-framed files under
//    <dir>/containers and the index, manifests and blobs live in a LogKv at
//    <dir>/index.log. Reopening the directory recovers all state, removing
//    orphan containers and dropping index entries whose container failed
//    trailer validation (crash-safe recovery).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "obs/metrics.h"
#include "storage/block_cache.h"
#include "storage/cold_tier.h"
#include "storage/container.h"

namespace freqdedup {

enum class StoreBackend {
  kMemory,  // volatile, in-process
  kFile     // persistent, log-structured containers + LogKv index
};

/// Default byte budget of the file backend's block cache (16 default-sized
/// containers' payloads).
inline constexpr uint64_t kDefaultBlockCacheBytes = 64ull * 1024 * 1024;

/// Block-cache budget meaning "never evict".
inline constexpr uint64_t kUnboundedBlockCacheBytes = UINT64_MAX;

/// Everything that shapes a store instance beyond its directory. The codec
/// and tiering knobs only affect the file backend; the memory backend keeps
/// containers resident and uncompressed.
struct StoreOptions {
  /// Target payload bytes per sealed container.
  uint64_t containerBytes = kDefaultContainerBytes;
  /// Codec for newly written container frames (kZstd falls back to the
  /// built-in kDeflate when the build has no system zstd). Existing
  /// containers are never rewritten: a store may freely mix codecs, and
  /// reads decode whatever each frame declares.
  ContainerCodec codec = ContainerCodec::kNone;
  /// Byte budget of the block cache shared by restore prefetch, cold-tier
  /// promotion and fsck --deep (0 disables it, kUnboundedBlockCacheBytes
  /// never evicts).
  uint64_t blockCacheBytes = kDefaultBlockCacheBytes;
  /// Eviction order of the block cache.
  BlockCacheEviction eviction = BlockCacheEviction::kLru;
  /// Hot/cold tiering (demotion policy + simulated cold-store performance).
  ColdTierOptions coldTier;
};

struct BackupStoreStats {
  uint64_t logicalPuts = 0;
  uint64_t logicalBytes = 0;
  uint64_t uniqueChunks = 0;
  uint64_t storedBytes = 0;

  [[nodiscard]] double dedupRatio() const {
    return storedBytes == 0 ? 0.0
                            : static_cast<double>(logicalBytes) /
                                  static_cast<double>(storedBytes);
  }
};

/// Outcome of one collectGarbage() pass.
struct GcStats {
  uint64_t chunksReclaimed = 0;    // refcount-0 chunks dropped
  uint64_t bytesReclaimed = 0;     // payload bytes those chunks held
  uint64_t chunksRelocated = 0;    // live chunks copied forward
  uint64_t containersCompacted = 0;  // containers rewritten and reclaimed
  uint64_t containersDemoted = 0;  // live containers moved to the cold tier
};

/// Result of verify(): an fsck-style consistency report.
struct StoreCheckReport {
  uint64_t chunksChecked = 0;
  uint64_t containersChecked = 0;
  uint64_t backupsChecked = 0;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// What crash-safe recovery had to repair while reopening a persistent store.
struct StoreRecoveryStats {
  uint64_t containersValidated = 0;      // trailer CRC + structure checked
  uint64_t orphanContainersRemoved = 0;  // files no index entry references
  uint64_t corruptContainers = 0;        // failed trailer validation
  uint64_t entriesDropped = 0;  // index entries whose container is gone/bad
  uint64_t refcountsRepaired = 0;  // refcounts reconciled against manifests
};

/// Container placement of a stored chunk, as exposed by chunkLocator(). The
/// restore planner groups reads by containerId so each container is fetched
/// once per locality batch.
struct ChunkPlacement {
  uint32_t containerId = 0;
  uint32_t entryIndex = 0;  // position within the container's entry table
  uint32_t size = 0;        // ciphertext size in bytes

  friend bool operator==(const ChunkPlacement&,
                         const ChunkPlacement&) = default;
};

/// Read-path counters, monotonic over the life of one store instance. Safe
/// to sample while reads are in flight.
struct StoreReadStats {
  uint64_t chunkReads = 0;      // chunks served by getChunk/getChunks
  uint64_t batchReads = 0;      // getChunks calls
  uint64_t containerLoads = 0;  // container fetches that missed the cache
  uint64_t cacheHits = 0;       // container fetches the block cache served
  uint64_t readRetries = 0;     // chunk reads re-resolved after a GC race
  uint64_t coldReads = 0;       // container fetches served by the cold tier
  uint64_t promotions = 0;      // cold containers copied back to hot
};

class BackupStore {
 public:
  virtual ~BackupStore() = default;

  /// True if a ciphertext chunk with this fingerprint is already stored.
  [[nodiscard]] virtual bool hasChunk(Fp cipherFp) const = 0;

  /// Stores a chunk unless already present (deduplication). Returns true if
  /// the chunk was new. New chunks start with a reference count of zero;
  /// references are added when a backup that uses them is recorded.
  virtual bool putChunk(Fp cipherFp, ByteView bytes) = 0;

  /// Retrieves a chunk's bytes; throws std::runtime_error if absent.
  virtual ByteVec getChunk(Fp cipherFp) = 0;

  /// Batched retrieval: the chunks' bytes, in request order (duplicates
  /// allowed). Throws std::runtime_error if any chunk is absent or fails
  /// integrity checks. The base implementation loops getChunk; backends
  /// override it with container-granular reads (every chunk a batch takes
  /// from one container is served by a single container fetch).
  ///
  /// Read-path thread safety: getChunks, getChunk, chunkLocator and
  /// readStats on the built-in backends are safe to call concurrently with
  /// each other AND with writer operations (which the caller still
  /// serializes, as DedupClient does) — restore I/O must not hold the
  /// writer lock.
  virtual std::vector<ByteVec> getChunks(std::span<const Fp> cipherFps);

  /// Container placement of stored chunks for locality-aware read planning:
  /// result[i] describes cipherFps[i], nullopt when the store has no sealed
  /// placement for it (chunk absent, or still in the open container). The
  /// base implementation knows nothing about placement and returns
  /// all-nullopt, which degrades the restore planner to byte-sized batches.
  [[nodiscard]] virtual std::vector<std::optional<ChunkPlacement>>
  chunkLocator(std::span<const Fp> cipherFps) const;

  /// Read-path counters; the base implementation reports all zeros.
  [[nodiscard]] virtual StoreReadStats readStats() const { return {}; }

  /// Current reference count of a chunk (0 if absent or unreferenced).
  [[nodiscard]] virtual uint32_t chunkRefCount(Fp cipherFp) const = 0;

  /// Named metadata blobs (sealed recipes).
  virtual void putBlob(const std::string& name, ByteView bytes) = 0;
  virtual std::optional<ByteVec> getBlob(const std::string& name) = 0;
  virtual bool eraseBlob(const std::string& name) = 0;
  [[nodiscard]] virtual std::vector<std::string> listBlobs() = 0;

  /// Records a completed backup: persists a manifest of the ciphertext
  /// fingerprints the backup references (one entry per chunk occurrence) and
  /// increments their reference counts. Re-recording an existing name first
  /// releases the old manifest. Seals the open container so every referenced
  /// chunk is indexed. Throws if a referenced chunk is not stored.
  virtual void recordBackup(const std::string& name,
                            std::span<const Fp> chunkRefs) = 0;

  /// Like recordBackup, but with durability deferred: the manifest is staged
  /// in the metadata log without forcing it to stable storage, so a pipeline
  /// of commits can share one later group sync (syncMetadataAsync / flush)
  /// instead of paying an fsync wait per backup. Until that sync, a crash
  /// may drop the record exactly as it would drop an unflushed put. The base
  /// implementation falls back to recordBackup (immediately durable).
  virtual void recordBackupDeferred(const std::string& name,
                                    std::span<const Fp> chunkRefs) {
    recordBackup(name, chunkRefs);
  }

  /// Registers `done(ok)` to run once every metadata mutation issued so far
  /// (manifests, blobs, index entries) is durable. Persistent backends run
  /// callbacks on their log's syncer thread, outside the store locks, and
  /// coalesce concurrent requests into one group fdatasync; volatile
  /// backends complete inline with ok == true. The callback must not
  /// destroy the store.
  virtual void syncMetadataAsync(std::function<void(bool ok)> done) {
    done(true);
  }

  /// Deletes a backup's manifest and decrements the reference counts it
  /// held. Returns false if no such backup was recorded. Chunk data is only
  /// reclaimed by the next collectGarbage().
  virtual bool releaseBackup(const std::string& name) = 0;

  /// Names of all recorded backups.
  [[nodiscard]] virtual std::vector<std::string> listBackups() = 0;

  /// The manifest of a recorded backup (its chunk references, in recipe
  /// order), or nullopt if no such backup exists.
  virtual std::optional<std::vector<Fp>> backupRefs(
      const std::string& name) = 0;

  /// Reclaims every chunk whose reference count is zero, compacting the
  /// containers that held them (live chunks are copied forward) and the
  /// persistent index log.
  virtual GcStats collectGarbage() = 0;

  /// fsck-style consistency check: every index entry resolves to a matching
  /// container entry, every manifest reference resolves to a stored chunk,
  /// and reference counts equal the manifest occurrence sums.
  virtual StoreCheckReport verify() = 0;

  /// Seals the open container and persists all state (persistent mode).
  virtual void flush() = 0;

  /// Write-path accounting, synthesized from the store's metrics registry.
  [[nodiscard]] virtual BackupStoreStats stats() const = 0;

  /// Point-in-time snapshot of every metric the store instance maintains
  /// (store.*, cache.*). A fresh open — including one that recovered
  /// persistent state — starts all counters from zero. The base
  /// implementation reports an empty snapshot.
  [[nodiscard]] virtual obs::MetricsSnapshot metricsSnapshot() const {
    return {};
  }

  /// Number of sealed, live containers.
  [[nodiscard]] virtual size_t containerCount() const = 0;
};

/// Creates a store of the chosen backend. `dir` is required for (and only
/// used by) StoreBackend::kFile; the memory backend keeps containers
/// resident and honors only options.containerBytes.
std::unique_ptr<BackupStore> makeBackupStore(StoreBackend backend,
                                             const std::string& dir = {},
                                             const StoreOptions& options = {});

}  // namespace freqdedup
