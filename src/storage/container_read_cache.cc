#include "storage/container_read_cache.h"

#include <utility>

#include "common/crc32.h"

namespace freqdedup {

ContainerReadCache::ContainerReadCache(size_t capacityContainers)
    : ContainerReadCache(capacityContainers, nullptr) {}

ContainerReadCache::ContainerReadCache(size_t capacityContainers,
                                       obs::MetricsRegistry& registry)
    : ContainerReadCache(capacityContainers, &registry) {}

ContainerReadCache::ContainerReadCache(size_t capacityContainers,
                                       obs::MetricsRegistry* registry)
    : ownedRegistry_(registry == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      registry_(registry == nullptr ? *ownedRegistry_ : *registry),
      hits_(registry_.counter("cache.hits")),
      misses_(registry_.counter("cache.misses")),
      admissions_(registry_.counter("cache.admissions")),
      invalidations_(registry_.counter("cache.invalidations")),
      evictions_(registry_.counter("cache.evictions")),
      capacity_(capacityContainers) {
  if (capacity_ > 0) lru_.emplace(capacity_);
}

ContainerReadCache::Entry ContainerReadCache::makeEntry(
    std::shared_ptr<const Container> container) {
  auto crcs = std::make_shared<std::vector<uint32_t>>();
  crcs->reserve(container->entries.size());
  const ByteView data(container->data);
  for (const ContainerEntry& e : container->entries)
    crcs->push_back(crc32c(data.subspan(e.dataOffset, e.size)));
  return Entry{std::move(container), std::move(crcs)};
}

std::optional<ContainerReadCache::Entry> ContainerReadCache::get(
    uint32_t id, bool recordStats) {
  std::optional<Entry> entry;
  {
    std::lock_guard lock(mu_);
    if (lru_) entry = lru_->get(id);
  }
  // Counters are wait-free registry atomics, updated outside the cache
  // mutex so accounting never serializes concurrent readers.
  if (recordStats) (entry ? hits_ : misses_).add();
  return entry;
}

ContainerReadCache::Entry ContainerReadCache::admit(
    uint32_t id, std::shared_ptr<const Container> container) {
  // The CRC table is computed before taking the cache's lock: admission
  // cost scales with container size and must not serialize concurrent
  // cache readers. (The caller may still hold its own store lock; see
  // sealOpenContainerLocked for that trade-off.)
  Entry entry = makeEntry(std::move(container));
  bool admitted = false;
  bool evicted = false;
  {
    std::lock_guard lock(mu_);
    if (lru_) {
      admitted = true;
      evicted = lru_->put(id, entry);
    }
  }
  if (admitted) admissions_.add();
  if (evicted) evictions_.add();
  return entry;
}

void ContainerReadCache::invalidate(uint32_t id) {
  bool erased = false;
  {
    std::lock_guard lock(mu_);
    erased = lru_ && lru_->erase(id);
  }
  if (erased) invalidations_.add();
}

void ContainerReadCache::clear() {
  std::lock_guard lock(mu_);
  if (lru_) lru_->clear();
}

ContainerReadCache::Stats ContainerReadCache::stats() const {
  return Stats{hits_.value(), misses_.value(), admissions_.value(),
               invalidations_.value(), evictions_.value()};
}

size_t ContainerReadCache::size() const {
  std::lock_guard lock(mu_);
  return lru_ ? lru_->size() : 0;
}

}  // namespace freqdedup
