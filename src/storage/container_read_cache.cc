#include "storage/container_read_cache.h"

#include <utility>

#include "common/crc32.h"

namespace freqdedup {

ContainerReadCache::ContainerReadCache(size_t capacityContainers)
    : capacity_(capacityContainers) {
  if (capacity_ > 0) lru_.emplace(capacity_);
}

ContainerReadCache::Entry ContainerReadCache::makeEntry(
    std::shared_ptr<const Container> container) {
  auto crcs = std::make_shared<std::vector<uint32_t>>();
  crcs->reserve(container->entries.size());
  const ByteView data(container->data);
  for (const ContainerEntry& e : container->entries)
    crcs->push_back(crc32c(data.subspan(e.dataOffset, e.size)));
  return Entry{std::move(container), std::move(crcs)};
}

std::optional<ContainerReadCache::Entry> ContainerReadCache::get(
    uint32_t id, bool recordStats) {
  std::lock_guard lock(mu_);
  if (!lru_) {
    if (recordStats) ++stats_.misses;
    return std::nullopt;
  }
  auto entry = lru_->get(id);
  if (recordStats) {
    if (entry) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  return entry;
}

ContainerReadCache::Entry ContainerReadCache::admit(
    uint32_t id, std::shared_ptr<const Container> container) {
  // The CRC table is computed before taking the cache's lock: admission
  // cost scales with container size and must not serialize concurrent
  // cache readers. (The caller may still hold its own store lock; see
  // sealOpenContainerLocked for that trade-off.)
  Entry entry = makeEntry(std::move(container));
  std::lock_guard lock(mu_);
  if (lru_) {
    ++stats_.admissions;
    if (lru_->put(id, entry)) ++stats_.evictions;
  }
  return entry;
}

void ContainerReadCache::invalidate(uint32_t id) {
  std::lock_guard lock(mu_);
  if (lru_ && lru_->erase(id)) ++stats_.invalidations;
}

void ContainerReadCache::clear() {
  std::lock_guard lock(mu_);
  if (lru_) lru_->clear();
}

ContainerReadCache::Stats ContainerReadCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

size_t ContainerReadCache::size() const {
  std::lock_guard lock(mu_);
  return lru_ ? lru_->size() : 0;
}

}  // namespace freqdedup
