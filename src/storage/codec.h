// Per-container payload compression codecs.
//
// The container frame records which codec compressed its data section so a
// store can mix codecs freely: the write path picks one codec per store
// (StoreOptions::codec), the read path decodes whatever each frame declares.
// `kZstd` uses the system libzstd when the build found its headers and
// otherwise falls back to `kDeflate`, a small self-contained LZ77 codec
// (LZ4-style token framing: literal/match nibbles, 2-byte offsets,
// 255-continuation extended lengths) so the build stays dependency-free.
//
// Safety contract: decompressBytes() allocates exactly `expectedRawSize`
// bytes — the caller validates that size against the frame's declared chunk
// extents *before* calling, so a crafted size claim can never trigger a huge
// allocation — and throws std::runtime_error on any malformed stream, output
// overrun, or final-size mismatch.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/bytes.h"

namespace freqdedup {

enum class ContainerCodec : uint8_t {
  kNone = 0,     // stored bytes are the raw payload
  kZstd = 1,     // system zstd (when built in; falls back to kDeflate)
  kDeflate = 2,  // built-in LZ77 codec, always available
};

/// True when this build can decode frames written with `codec`.
[[nodiscard]] bool codecAvailable(ContainerCodec codec);

/// The codec the write path actually uses for a requested codec: kZstd maps
/// to kDeflate when the build has no system zstd.
[[nodiscard]] ContainerCodec effectiveCodec(ContainerCodec requested);

/// Stable lowercase name ("none", "zstd", "deflate") for CLIs and logs.
[[nodiscard]] const char* codecName(ContainerCodec codec);

/// Inverse of codecName; nullopt for unknown names.
[[nodiscard]] std::optional<ContainerCodec> codecFromName(
    std::string_view name);

/// Compresses `raw` with `codec`. Returns nullopt when the codec is
/// unavailable, the input is empty, or the compressed form would not be
/// strictly smaller than the input (the caller then stores raw bytes).
[[nodiscard]] std::optional<ByteVec> compressBytes(ContainerCodec codec,
                                                   ByteView raw);

/// Decompresses `stored` into exactly `expectedRawSize` bytes. Throws
/// std::runtime_error on unknown/unavailable codecs, malformed streams,
/// writes past the expected size, or a final size mismatch.
[[nodiscard]] ByteVec decompressBytes(ContainerCodec codec, ByteView stored,
                                      uint64_t expectedRawSize);

}  // namespace freqdedup
