#include "storage/backup_manager.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "common/check.h"
#include "common/varint.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

namespace {

/// One chunk after the (parallelizable) encrypt stage.
struct EncryptedChunk {
  AesKey key;
  ByteVec cipher;
  Fp cipherFp = 0;
  Fp plainFp = 0;
};

/// Ciphertexts in flight on the parallel paths: encryption runs at most this
/// many chunks ahead of the serial store loop, bounding extra memory to
/// O(window * chunk size) regardless of file size.
constexpr size_t kEncryptWindowChunks = 1024;

}  // namespace

std::vector<size_t> scrambleOrder(size_t recordCount,
                                  std::span<const Segment> segments,
                                  Rng& rng) {
  std::vector<size_t> order;
  order.reserve(recordCount);
  for (const Segment& seg : segments) {
    FDD_CHECK(seg.end <= recordCount);
    std::deque<size_t> scrambled;
    for (size_t i = seg.begin; i < seg.end; ++i) {
      // Algorithm 5, lines 7-12: odd random number -> front, else back.
      if (rng.next() & 1) {
        scrambled.push_front(i);
      } else {
        scrambled.push_back(i);
      }
    }
    order.insert(order.end(), scrambled.begin(), scrambled.end());
  }
  FDD_CHECK_MSG(order.size() == recordCount,
                "segments must cover all records");
  return order;
}

BackupManager::BackupManager(BackupStore& store, const KeyManager& keyManager,
                             const Chunker& chunker, BackupOptions options)
    : store_(&store),
      keyManager_(&keyManager),
      chunker_(&chunker),
      options_(options) {
  if (options_.parallelism > 1)
    pool_ = std::make_unique<ThreadPool>(options_.parallelism);
}

BackupManager::~BackupManager() = default;

BackupOutcome BackupManager::backup(const std::string& name,
                                    ByteView content) {
  const std::vector<ChunkSpan> spans = chunker_->split(content);
  switch (options_.scheme) {
    case EncryptionScheme::kMle:
      return backupMle(name, content, spans);
    case EncryptionScheme::kMinHash:
      return backupMinHash(name, content, spans, /*scramble=*/false);
    case EncryptionScheme::kMinHashScrambled:
      return backupMinHash(name, content, spans, /*scramble=*/true);
  }
  FDD_CHECK_MSG(false, "unreachable");
  return {};
}

BackupOutcome BackupManager::backupMle(const std::string& name,
                                       ByteView content,
                                       const std::vector<ChunkSpan>& spans) {
  BackupOutcome outcome;
  outcome.fileRecipe.fileName = name;
  outcome.fileRecipe.fileSize = content.size();
  outcome.chunkCount = spans.size();

  if (!pool_) {
    // Serial path: one ciphertext in flight at a time (bounded memory).
    for (const ChunkSpan& span : spans) {
      const ByteView plain = chunkBytes(content, span);
      const Fp plainFp = fpOfContent(plain);
      const AesKey key = keyManager_->deriveChunkKey(plainFp);
      const ByteVec cipher = MleScheme::encryptWithKey(key, plain);
      const Fp cipherFp = fpOfContent(cipher);
      if (store_->putChunk(cipherFp, cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries.push_back(
          {cipherFp, static_cast<uint32_t>(cipher.size()), plainFp});
      outcome.keyRecipe.keys.push_back(key);
    }
    return outcome;
  }

  // Encrypt stage: parallel across a bounded window of chunks (key
  // derivation and AES are pure); the store stage runs serially in logical
  // order, so the outcome is identical for every parallelism level.
  std::vector<EncryptedChunk> window;
  for (size_t base = 0; base < spans.size(); base += kEncryptWindowChunks) {
    const size_t count =
        std::min(kEncryptWindowChunks, spans.size() - base);
    window.assign(count, {});
    parallelFor(*pool_, count, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const ByteView plain = chunkBytes(content, spans[base + k]);
        const Fp plainFp = fpOfContent(plain);
        const AesKey key = keyManager_->deriveChunkKey(plainFp);
        ByteVec cipher = MleScheme::encryptWithKey(key, plain);
        const Fp cipherFp = fpOfContent(cipher);
        window[k] = {key, std::move(cipher), cipherFp, plainFp};
      }
    });
    for (const EncryptedChunk& e : window) {
      if (store_->putChunk(e.cipherFp, e.cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries.push_back(
          {e.cipherFp, static_cast<uint32_t>(e.cipher.size()), e.plainFp});
      outcome.keyRecipe.keys.push_back(e.key);
    }
  }
  return outcome;
}

BackupOutcome BackupManager::backupMinHash(
    const std::string& name, ByteView content,
    const std::vector<ChunkSpan>& spans, bool scramble) {
  // Materialize plaintext chunks in logical order.
  std::vector<ByteVec> plainChunks;
  plainChunks.reserve(spans.size());
  for (const ChunkSpan& span : spans) {
    const ByteView bytes = chunkBytes(content, span);
    plainChunks.emplace_back(bytes.begin(), bytes.end());
  }

  // Segment on (fingerprint, size) records of the original order.
  std::vector<ChunkRecord> records;
  records.reserve(plainChunks.size());
  for (const auto& chunk : plainChunks)
    records.push_back(
        {fpOfContent(chunk), static_cast<uint32_t>(chunk.size())});
  const std::vector<Segment> segments =
      segmentRecords(records, options_.segmentParams);

  // Scrambling permutes the upload/storage order within each segment; the
  // recipes keep the original order so restore is unaffected (Section 6.2).
  std::vector<size_t> order;
  if (scramble) {
    Rng rng(options_.scrambleSeed);
    order = scrambleOrder(records.size(), segments, rng);
  } else {
    order.resize(records.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  }

  // Per-segment keys from the segment's minimum fingerprint (Algorithm 4).
  std::vector<AesKey> keyOf(plainChunks.size());
  for (const Segment& seg : segments) {
    const Fp minFp = segmentMinFingerprint(records, seg);
    const AesKey segKey = keyManager_->deriveSegmentKey(minFp);
    for (size_t i = seg.begin; i < seg.end; ++i) keyOf[i] = segKey;
  }

  BackupOutcome outcome;
  outcome.fileRecipe.fileName = name;
  outcome.fileRecipe.fileSize = content.size();
  outcome.fileRecipe.entries.resize(plainChunks.size());
  outcome.keyRecipe.keys.resize(plainChunks.size());
  outcome.chunkCount = plainChunks.size();

  if (!pool_) {
    // Serial path: encrypt in upload order, one ciphertext in flight.
    for (const size_t i : order) {
      const ByteVec cipher =
          MleScheme::encryptWithKey(keyOf[i], plainChunks[i]);
      const Fp cipherFp = fpOfContent(cipher);
      if (store_->putChunk(cipherFp, cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries[i] = {
          cipherFp, static_cast<uint32_t>(cipher.size()), records[i].fp};
      outcome.keyRecipe.keys[i] = keyOf[i];
    }
    return outcome;
  }

  // Encrypt stage: parallel across a bounded window of the upload order.
  // The store stage keeps the (possibly scrambled) upload order, so
  // parallelism never changes what the server observes.
  std::vector<EncryptedChunk> window;
  for (size_t base = 0; base < order.size(); base += kEncryptWindowChunks) {
    const size_t count = std::min(kEncryptWindowChunks, order.size() - base);
    window.assign(count, {});
    parallelFor(*pool_, count, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const size_t i = order[base + k];
        ByteVec cipher = MleScheme::encryptWithKey(keyOf[i], plainChunks[i]);
        const Fp cipherFp = fpOfContent(cipher);
        window[k] = {keyOf[i], std::move(cipher), cipherFp};
      }
    });
    for (size_t k = 0; k < count; ++k) {
      const size_t i = order[base + k];
      const EncryptedChunk& e = window[k];
      if (store_->putChunk(e.cipherFp, e.cipher)) {
        ++outcome.newChunks;
      } else {
        ++outcome.duplicateChunks;
      }
      outcome.fileRecipe.entries[i] = {
          e.cipherFp, static_cast<uint32_t>(e.cipher.size()), records[i].fp};
      outcome.keyRecipe.keys[i] = e.key;
    }
  }
  return outcome;
}

ByteVec BackupManager::restore(const FileRecipe& fileRecipe,
                               const KeyRecipe& keyRecipe) {
  FDD_CHECK_MSG(fileRecipe.entries.size() == keyRecipe.keys.size(),
                "file and key recipes disagree");
  ByteVec content;
  content.reserve(fileRecipe.fileSize);
  for (size_t i = 0; i < fileRecipe.entries.size(); ++i) {
    const RecipeEntry& entry = fileRecipe.entries[i];
    const ByteVec cipher = store_->getChunk(entry.cipherFp);
    // End-to-end verification: the store must hand back exactly the
    // ciphertext the recipe names, and decryption must reproduce the
    // plaintext the recipe fingerprinted at backup time.
    if (fpOfContent(cipher) != entry.cipherFp)
      throw std::runtime_error(
          "restore: ciphertext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    const ByteVec plain =
        MleScheme::decryptWithKey(keyRecipe.keys[i], cipher);
    if (entry.plainFp != 0 && fpOfContent(plain) != entry.plainFp)
      throw std::runtime_error(
          "restore: plaintext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    appendBytes(content, plain);
  }
  if (content.size() != fileRecipe.fileSize)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe.fileName);
  return content;
}

std::string BackupManager::recipeBlobName(const std::string& name) {
  return "recipe:" + name;
}

namespace {

/// The recipe blob packs both sealed recipes into one value so the pair is
/// swapped by a single (atomic) log record and can never tear: varint
/// lengths prefix each sealed section.
ByteVec packSealedRecipes(ByteView sealedFile, ByteView sealedKeys) {
  ByteVec out;
  putVarint(out, sealedFile.size());
  appendBytes(out, sealedFile);
  putVarint(out, sealedKeys.size());
  appendBytes(out, sealedKeys);
  return out;
}

std::pair<ByteVec, ByteVec> unpackSealedRecipes(ByteView blob) {
  size_t offset = 0;
  const auto fileLen = getVarint(blob, offset);
  if (!fileLen || *fileLen > blob.size() - offset)
    throw std::runtime_error("recipe blob: truncated file section");
  ByteVec sealedFile(blob.begin() + static_cast<ptrdiff_t>(offset),
                     blob.begin() + static_cast<ptrdiff_t>(offset + *fileLen));
  offset += static_cast<size_t>(*fileLen);
  const auto keyLen = getVarint(blob, offset);
  if (!keyLen || *keyLen != blob.size() - offset)
    throw std::runtime_error("recipe blob: truncated key section");
  ByteVec sealedKeys(blob.begin() + static_cast<ptrdiff_t>(offset),
                     blob.end());
  return {std::move(sealedFile), std::move(sealedKeys)};
}

}  // namespace

void BackupManager::commitBackup(const std::string& name,
                                 const BackupOutcome& outcome,
                                 const AesKey& userKey, Rng& rng) {
  std::vector<Fp> refs;
  refs.reserve(outcome.fileRecipe.entries.size());
  for (const RecipeEntry& e : outcome.fileRecipe.entries)
    refs.push_back(e.cipherFp);

  // Phase 1: widen the manifest to old ∪ new, so chunks of both the current
  // blob and the incoming one stay protected through the swap.
  const auto oldRefs = store_->backupRefs(name);
  if (oldRefs) {
    std::vector<Fp> unionRefs = refs;
    unionRefs.insert(unionRefs.end(), oldRefs->begin(), oldRefs->end());
    store_->recordBackup(name, unionRefs);
  } else {
    store_->recordBackup(name, refs);
  }

  // Phase 2: swap the sealed recipe pair in one atomic blob put.
  store_->putBlob(
      recipeBlobName(name),
      packSealedRecipes(
          sealWithUserKey(userKey, serializeFileRecipe(outcome.fileRecipe),
                          rng),
          sealWithUserKey(userKey, serializeKeyRecipe(outcome.keyRecipe),
                          rng)));

  // Phase 3: shrink the manifest to the new references only.
  if (oldRefs) store_->recordBackup(name, refs);
}

bool BackupManager::deleteBackup(const std::string& name) {
  // Blob first: a crash in between leaves the manifest (safe over-retention
  // that a re-run or re-commit clears), never recipes whose chunks GC could
  // reclaim underneath them.
  const bool hadBlob = store_->eraseBlob(recipeBlobName(name));
  const bool hadManifest = store_->releaseBackup(name);
  return hadBlob || hadManifest;
}

std::vector<std::string> BackupManager::listBackups() {
  return store_->listBackups();
}

ByteVec BackupManager::restoreByName(const std::string& name,
                                     const AesKey& userKey) {
  const auto blob = store_->getBlob(recipeBlobName(name));
  if (!blob) throw std::runtime_error("restoreByName: no recipes for " + name);
  const auto [sealedFile, sealedKeys] = unpackSealedRecipes(*blob);
  const FileRecipe fileRecipe =
      parseFileRecipe(openWithUserKey(userKey, sealedFile));
  const KeyRecipe keyRecipe =
      parseKeyRecipe(openWithUserKey(userKey, sealedKeys));
  return restore(fileRecipe, keyRecipe);
}

}  // namespace freqdedup
