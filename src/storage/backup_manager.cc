#include "storage/backup_manager.h"

namespace freqdedup {

BackupManager::BackupManager(BackupStore& store, const KeyManager& keyManager,
                             const Chunker& chunker, BackupOptions options)
    : client_(store, keyManager, chunker, options) {}

BackupOutcome BackupManager::backup(const std::string& name,
                                    ByteView content) {
  BackupSession session = client_.beginBackup(name);
  session.append(content);
  return session.finish();
}

ByteVec BackupManager::restore(const FileRecipe& fileRecipe,
                               const KeyRecipe& keyRecipe) {
  return client_.beginRestore(fileRecipe, keyRecipe).readAll();
}

void BackupManager::commitBackup(const std::string& name,
                                 const BackupOutcome& outcome,
                                 const AesKey& userKey, Rng& rng) {
  client_.commitBackup(name, outcome, userKey, rng);
}

bool BackupManager::deleteBackup(const std::string& name) {
  return client_.deleteBackup(name);
}

std::vector<std::string> BackupManager::listBackups() {
  return client_.listBackups();
}

ByteVec BackupManager::restoreByName(const std::string& name,
                                     const AesKey& userKey) {
  return client_.beginRestore(name, userKey).readAll();
}

std::string BackupManager::recipeBlobName(const std::string& name) {
  return DedupClient::recipeBlobName(name);
}

}  // namespace freqdedup
