// Persistent BackupStore backend.
//
// On-disk layout under the store directory:
//   <dir>/index.log          LogKv: fingerprint index, blobs, manifests
//   <dir>/containers/NNNNNNNN.fdc   CRC-framed chunk containers (hot tier)
//   <dir>/cold/NNNNNNNN.fdc         demoted containers (cold tier)
//
// Containers are written atomically (tmp + rename) and *before* their index
// entries, so the index never references bytes that are not durably on disk.
// Opening the directory runs crash-safe recovery: the LogKv replays its log
// (truncating any torn tail), every container trailer is validated (both
// tiers), orphan containers and stray .tmp files are deleted, and index
// entries whose container is missing or corrupt are dropped.
#pragma once

#include <string>

#include "storage/container_backup_store.h"

namespace freqdedup {

class FileBackupStore final : public ContainerBackupStore {
 public:
  /// Opens (creating if missing) the store rooted at `dir` and recovers any
  /// existing state. Throws std::runtime_error on unrecoverable I/O failure.
  /// StoreOptions shape the codec of new containers, the block cache's byte
  /// budget and the demotion policy; a freshly opened store always starts
  /// with a cold cache and reads back whatever codecs and tier placement the
  /// directory already holds.
  explicit FileBackupStore(const std::string& dir,
                           const StoreOptions& options = {});

  /// What recovery had to repair while opening this store.
  [[nodiscard]] const StoreRecoveryStats& recoveryStats() const {
    return recovery_;
  }

 private:
  StoreRecoveryStats recovery_;
};

}  // namespace freqdedup
