#include "storage/backup_store.h"

#include "common/check.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {

std::unique_ptr<BackupStore> makeBackupStore(StoreBackend backend,
                                             const std::string& dir,
                                             uint64_t containerBytes) {
  switch (backend) {
    case StoreBackend::kMemory:
      return std::make_unique<MemBackupStore>(containerBytes);
    case StoreBackend::kFile:
      return std::make_unique<FileBackupStore>(dir, containerBytes);
  }
  FDD_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace freqdedup
