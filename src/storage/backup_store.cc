#include "storage/backup_store.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "kvstore/logkv.h"
#include "kvstore/memkv.h"

namespace freqdedup {

namespace {
constexpr char kChunkKeyPrefix = 'C';
constexpr char kBlobKeyPrefix = 'B';

ByteVec blobKey(const std::string& name) {
  ByteVec key;
  key.push_back(static_cast<uint8_t>(kBlobKeyPrefix));
  appendBytes(key, ByteView(reinterpret_cast<const uint8_t*>(name.data()),
                            name.size()));
  return key;
}
}  // namespace

ByteVec BackupStore::chunkKey(Fp fp) {
  ByteVec key;
  key.push_back(static_cast<uint8_t>(kChunkKeyPrefix));
  putU64(key, fp);
  return key;
}

BackupStore::BackupStore()
    : containerBytes_(kDefaultContainerBytes),
      index_(std::make_unique<MemKv>()),
      builder_(kDefaultContainerBytes) {}

BackupStore::BackupStore(const std::string& dir, uint64_t containerBytes)
    : dir_(dir), containerBytes_(containerBytes), builder_(containerBytes) {
  FDD_CHECK_MSG(!dir.empty(), "persistent store needs a directory");
  std::filesystem::create_directories(dir_ + "/containers");
  index_ = std::make_unique<LogKv>(dir_ + "/index.log");
  loadPersistentState();
}

BackupStore::~BackupStore() {
  if (!dir_.empty()) {
    try {
      flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Destructors must not throw; an unflushed open container is the same
      // state as a crash before flush(), which recovery tolerates.
    }
  }
}

void BackupStore::loadPersistentState() {
  // Containers are named containers/%08u.fdc; resume numbering after the max.
  nextContainerId_ = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/containers")) {
    const std::string stem = entry.path().stem().string();
    const uint32_t id = static_cast<uint32_t>(std::stoul(stem));
    nextContainerId_ = std::max(nextContainerId_, id + 1);
  }
  // Rebuild stats from the index.
  index_->forEach([this](ByteView key, ByteView value) {
    if (!key.empty() && key[0] == static_cast<uint8_t>(kChunkKeyPrefix)) {
      ++stats_.uniqueChunks;
      stats_.storedBytes += getU32(value, 8);
    }
  });
}

std::string BackupStore::containerPath(uint32_t id) const {
  char name[32];
  snprintf(name, sizeof(name), "%08u.fdc", id);
  return dir_ + "/containers/" + name;
}

bool BackupStore::hasChunk(Fp cipherFp) const {
  if (openChunks_.contains(cipherFp)) return true;
  return index_->contains(chunkKey(cipherFp));
}

bool BackupStore::putChunk(Fp cipherFp, ByteView bytes) {
  ++stats_.logicalPuts;
  stats_.logicalBytes += bytes.size();
  if (hasChunk(cipherFp)) return false;

  if (builder_.wouldOverflow(static_cast<uint32_t>(bytes.size())))
    sealOpenContainer();
  builder_.add(cipherFp, static_cast<uint32_t>(bytes.size()), bytes);
  openChunks_.emplace(cipherFp, ByteVec(bytes.begin(), bytes.end()));
  ++stats_.uniqueChunks;
  stats_.storedBytes += bytes.size();
  return true;
}

void BackupStore::sealOpenContainer() {
  if (builder_.empty()) return;
  const uint32_t id = nextContainerId_++;
  Container container = builder_.seal(id);
  // Index entries: containerId u32, entryIndex u32, size u32.
  for (uint32_t i = 0; i < container.entries.size(); ++i) {
    ByteVec value;
    putU32(value, id);
    putU32(value, i);
    putU32(value, container.entries[i].size);
    index_->put(chunkKey(container.entries[i].fp), value);
  }
  if (!dir_.empty()) {
    writeFile(containerPath(id), serializeContainer(container));
  }
  containers_.emplace(id, std::move(container));
  openChunks_.clear();
}

const Container& BackupStore::loadContainer(uint32_t id) {
  const auto it = containers_.find(id);
  if (it != containers_.end()) return it->second;
  FDD_CHECK_MSG(!dir_.empty(), "container missing from in-memory store");
  Container container = parseContainer(readFile(containerPath(id)));
  return containers_.emplace(id, std::move(container)).first->second;
}

ByteVec BackupStore::getChunk(Fp cipherFp) {
  const auto openIt = openChunks_.find(cipherFp);
  if (openIt != openChunks_.end()) return openIt->second;

  const auto value = index_->get(chunkKey(cipherFp));
  if (!value)
    throw std::runtime_error("BackupStore: chunk not found: " +
                             fpToHex(cipherFp));
  const uint32_t containerId = getU32(*value, 0);
  const uint32_t entryIndex = getU32(*value, 4);
  const Container& container = loadContainer(containerId);
  FDD_CHECK(entryIndex < container.entries.size());
  const ContainerEntry& entry = container.entries[entryIndex];
  return ByteVec(
      container.data.begin() + static_cast<ptrdiff_t>(entry.dataOffset),
      container.data.begin() +
          static_cast<ptrdiff_t>(entry.dataOffset + entry.size));
}

void BackupStore::putBlob(const std::string& name, ByteView bytes) {
  index_->put(blobKey(name), bytes);
}

std::optional<ByteVec> BackupStore::getBlob(const std::string& name) {
  return index_->get(blobKey(name));
}

std::vector<std::string> BackupStore::listBlobs() {
  std::vector<std::string> names;
  index_->forEach([&names](ByteView key, ByteView) {
    if (!key.empty() && key[0] == static_cast<uint8_t>(kBlobKeyPrefix)) {
      names.emplace_back(reinterpret_cast<const char*>(key.data()) + 1,
                         key.size() - 1);
    }
  });
  return names;
}

void BackupStore::flush() {
  sealOpenContainer();
  if (auto* logkv = dynamic_cast<LogKv*>(index_.get())) logkv->flush();
}

}  // namespace freqdedup
