#include "storage/backup_store.h"

#include "common/check.h"
#include "storage/container_backup_store.h"
#include "storage/file_backup_store.h"

namespace freqdedup {

std::vector<ByteVec> BackupStore::getChunks(std::span<const Fp> cipherFps) {
  std::vector<ByteVec> out;
  out.reserve(cipherFps.size());
  for (const Fp fp : cipherFps) out.push_back(getChunk(fp));
  return out;
}

std::vector<std::optional<ChunkPlacement>> BackupStore::chunkLocator(
    std::span<const Fp> cipherFps) const {
  return std::vector<std::optional<ChunkPlacement>>(cipherFps.size());
}

std::unique_ptr<BackupStore> makeBackupStore(StoreBackend backend,
                                             const std::string& dir,
                                             const StoreOptions& options) {
  switch (backend) {
    case StoreBackend::kMemory:
      return std::make_unique<MemBackupStore>(options.containerBytes);
    case StoreBackend::kFile:
      return std::make_unique<FileBackupStore>(dir, options);
  }
  FDD_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace freqdedup
