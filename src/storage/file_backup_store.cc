#include "storage/file_backup_store.h"

#include <filesystem>

#include "common/check.h"
#include "kvstore/logkv.h"

namespace freqdedup {

namespace {

std::unique_ptr<KvStore> openIndexLog(const std::string& dir) {
  FDD_CHECK_MSG(!dir.empty(), "persistent store needs a directory");
  std::filesystem::create_directories(dir + "/containers");
  return std::make_unique<LogKv>(dir + "/index.log");
}

}  // namespace

FileBackupStore::FileBackupStore(const std::string& dir,
                                 const StoreOptions& options)
    : ContainerBackupStore(openIndexLog(dir), dir, options) {
  recovery_ = recoverPersistentState();
}

}  // namespace freqdedup
