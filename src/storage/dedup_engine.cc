#include "storage/dedup_engine.h"

#include "common/check.h"

namespace freqdedup {

DedupEngine::DedupEngine(const DedupEngineParams& params)
    : params_(params),
      logicalChunks_(registry_.counter("ingest.logical_chunks")),
      logicalBytes_(registry_.counter("ingest.logical_bytes")),
      uniqueChunks_(registry_.counter("ingest.unique_chunks")),
      uniqueBytes_(registry_.counter("ingest.unique_bytes")),
      cacheHits_(registry_.counter("ingest.cache_hits")),
      bufferHits_(registry_.counter("ingest.buffer_hits")),
      bloomNegatives_(registry_.counter("ingest.bloom_negatives")),
      bloomFalsePositives_(registry_.counter("ingest.bloom_false_positives")),
      indexHits_(registry_.counter("ingest.index_hits")),
      metadataUpdateBytes_(registry_.counter("ingest.metadata_update_bytes")),
      metadataIndexBytes_(registry_.counter("ingest.metadata_index_bytes")),
      metadataLoadingBytes_(
          registry_.counter("ingest.metadata_loading_bytes")),
      bloom_(std::max<uint64_t>(1, params.expectedFingerprints),
             params.bloomFpr),
      cache_(std::max<uint64_t>(1, params.cacheBytes / kFpMetadataBytes)) {}

IngestOutcome DedupEngine::ingest(const ChunkRecord& record) {
  IngestTally tally;
  const IngestOutcome outcome = ingestTallied(record, tally);
  flushTally(tally);
  return outcome;
}

IngestOutcome DedupEngine::ingestTallied(const ChunkRecord& record,
                                         IngestTally& tally) {
  ++tally.logicalChunks;
  tally.logicalBytes += record.size;

  // S1: in-memory fingerprint cache (also covers the open container buffer,
  // whose fingerprints are in memory by definition).
  if (const auto cached = cache_.get(record.fp)) {
    ++tally.cacheHits;
    return {.duplicate = true, .containerId = *cached};
  }
  if (bufferFps_.contains(record.fp)) {
    ++tally.bufferHits;
    return {.duplicate = true, .containerId = std::nullopt};
  }

  // S2: Bloom filter — a negative proves uniqueness.
  if (!bloom_.maybeContains(record.fp)) {
    ++tally.bloomNegatives;
    storeUnique(record, tally);
    return {.duplicate = false, .containerId = std::nullopt};
  }

  // S3: on-disk index lookup.
  tally.indexBytes += kFpMetadataBytes;
  const auto it = index_.find(record.fp);
  if (it == index_.end()) {
    ++tally.bloomFalsePositives;
    storeUnique(record, tally);
    return {.duplicate = false, .containerId = std::nullopt};
  }

  // S4: duplicate — prefetch its whole container's fingerprints.
  ++tally.indexHits;
  const uint32_t containerId = it->second;
  const auto& fps = containerFps_[containerId];
  tally.loadingBytes += static_cast<uint64_t>(fps.size()) * kFpMetadataBytes;
  for (const Fp fp : fps) cache_.put(fp, containerId);
  return {.duplicate = true, .containerId = containerId};
}

void DedupEngine::storeUnique(const ChunkRecord& record, IngestTally& tally) {
  ++tally.uniqueChunks;
  tally.uniqueBytes += record.size;
  bloom_.add(record.fp);
  if (buffer_.size() > 0 && bufferBytes_ + record.size > params_.containerBytes)
    flushOpenContainer();
  buffer_.push_back(record);
  bufferFps_.insert(record.fp);
  bufferBytes_ += record.size;
}

void DedupEngine::flushTally(const IngestTally& tally) {
  if (tally.logicalChunks) logicalChunks_.add(tally.logicalChunks);
  if (tally.logicalBytes) logicalBytes_.add(tally.logicalBytes);
  if (tally.uniqueChunks) uniqueChunks_.add(tally.uniqueChunks);
  if (tally.uniqueBytes) uniqueBytes_.add(tally.uniqueBytes);
  if (tally.cacheHits) cacheHits_.add(tally.cacheHits);
  if (tally.bufferHits) bufferHits_.add(tally.bufferHits);
  if (tally.bloomNegatives) bloomNegatives_.add(tally.bloomNegatives);
  if (tally.bloomFalsePositives)
    bloomFalsePositives_.add(tally.bloomFalsePositives);
  if (tally.indexHits) indexHits_.add(tally.indexHits);
  if (tally.indexBytes) metadataIndexBytes_.add(tally.indexBytes);
  if (tally.loadingBytes) metadataLoadingBytes_.add(tally.loadingBytes);
}

void DedupEngine::flushOpenContainer() {
  if (buffer_.empty()) return;
  const auto containerId = static_cast<uint32_t>(containerFps_.size());
  std::vector<Fp> fps;
  fps.reserve(buffer_.size());
  for (const auto& r : buffer_) fps.push_back(r.fp);
  // Writing the sealed container updates the on-disk fingerprint index.
  metadataUpdateBytes_.add(static_cast<uint64_t>(buffer_.size()) *
                           kFpMetadataBytes);
  for (const Fp fp : fps) index_[fp] = containerId;
  containerFps_.push_back(std::move(fps));
  buffer_.clear();
  bufferFps_.clear();
  bufferBytes_ = 0;
}

void DedupEngine::ingestBackup(std::span<const ChunkRecord> records) {
  // One tally for the whole span: the hot loop stays free of atomic
  // operations, and concurrent snapshot readers see the batch land at once.
  IngestTally tally;
  for (const auto& r : records) ingestTallied(r, tally);
  flushTally(tally);
}

const std::vector<Fp>& DedupEngine::containerFingerprints(uint32_t id) const {
  FDD_CHECK(id < containerFps_.size());
  return containerFps_[id];
}

DedupEngineStats DedupEngine::stats() const {
  DedupEngineStats s;
  s.logicalChunks = logicalChunks_.value();
  s.logicalBytes = logicalBytes_.value();
  s.uniqueChunks = uniqueChunks_.value();
  s.uniqueBytes = uniqueBytes_.value();
  s.cacheHits = cacheHits_.value();
  s.bufferHits = bufferHits_.value();
  s.bloomNegatives = bloomNegatives_.value();
  s.bloomFalsePositives = bloomFalsePositives_.value();
  s.indexHits = indexHits_.value();
  s.metadata.updateBytes = metadataUpdateBytes_.value();
  s.metadata.indexBytes = metadataIndexBytes_.value();
  s.metadata.loadingBytes = metadataLoadingBytes_.value();
  return s;
}

MetadataAccessStats MetadataAccessStats::fromSnapshot(
    const obs::MetricsSnapshot& snap) {
  MetadataAccessStats m;
  m.updateBytes = snap.counter("ingest.metadata_update_bytes");
  m.indexBytes = snap.counter("ingest.metadata_index_bytes");
  m.loadingBytes = snap.counter("ingest.metadata_loading_bytes");
  return m;
}

DedupEngineStats DedupEngineStats::fromSnapshot(
    const obs::MetricsSnapshot& snap) {
  DedupEngineStats s;
  s.logicalChunks = snap.counter("ingest.logical_chunks");
  s.logicalBytes = snap.counter("ingest.logical_bytes");
  s.uniqueChunks = snap.counter("ingest.unique_chunks");
  s.uniqueBytes = snap.counter("ingest.unique_bytes");
  s.cacheHits = snap.counter("ingest.cache_hits");
  s.bufferHits = snap.counter("ingest.buffer_hits");
  s.bloomNegatives = snap.counter("ingest.bloom_negatives");
  s.bloomFalsePositives = snap.counter("ingest.bloom_false_positives");
  s.indexHits = snap.counter("ingest.index_hits");
  s.metadata = MetadataAccessStats::fromSnapshot(snap);
  return s;
}

}  // namespace freqdedup
