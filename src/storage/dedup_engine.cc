#include "storage/dedup_engine.h"

#include "common/check.h"

namespace freqdedup {

DedupEngine::DedupEngine(const DedupEngineParams& params)
    : params_(params),
      bloom_(std::max<uint64_t>(1, params.expectedFingerprints),
             params.bloomFpr),
      cache_(std::max<uint64_t>(1, params.cacheBytes / kFpMetadataBytes)) {}

IngestOutcome DedupEngine::ingest(const ChunkRecord& record) {
  ++stats_.logicalChunks;
  stats_.logicalBytes += record.size;

  // S1: in-memory fingerprint cache (also covers the open container buffer,
  // whose fingerprints are in memory by definition).
  if (const auto cached = cache_.get(record.fp)) {
    ++stats_.cacheHits;
    return {.duplicate = true, .containerId = *cached};
  }
  if (bufferFps_.contains(record.fp)) {
    ++stats_.bufferHits;
    return {.duplicate = true, .containerId = std::nullopt};
  }

  // S2: Bloom filter — a negative proves uniqueness.
  if (!bloom_.maybeContains(record.fp)) {
    ++stats_.bloomNegatives;
    storeUnique(record);
    return {.duplicate = false, .containerId = std::nullopt};
  }

  // S3: on-disk index lookup.
  stats_.metadata.indexBytes += kFpMetadataBytes;
  const auto it = index_.find(record.fp);
  if (it == index_.end()) {
    ++stats_.bloomFalsePositives;
    storeUnique(record);
    return {.duplicate = false, .containerId = std::nullopt};
  }

  // S4: duplicate — prefetch its whole container's fingerprints.
  ++stats_.indexHits;
  const uint32_t containerId = it->second;
  const auto& fps = containerFps_[containerId];
  stats_.metadata.loadingBytes +=
      static_cast<uint64_t>(fps.size()) * kFpMetadataBytes;
  for (const Fp fp : fps) cache_.put(fp, containerId);
  return {.duplicate = true, .containerId = containerId};
}

void DedupEngine::storeUnique(const ChunkRecord& record) {
  ++stats_.uniqueChunks;
  stats_.uniqueBytes += record.size;
  bloom_.add(record.fp);
  if (buffer_.size() > 0 && bufferBytes_ + record.size > params_.containerBytes)
    flushOpenContainer();
  buffer_.push_back(record);
  bufferFps_.insert(record.fp);
  bufferBytes_ += record.size;
}

void DedupEngine::flushOpenContainer() {
  if (buffer_.empty()) return;
  const auto containerId = static_cast<uint32_t>(containerFps_.size());
  std::vector<Fp> fps;
  fps.reserve(buffer_.size());
  for (const auto& r : buffer_) fps.push_back(r.fp);
  // Writing the sealed container updates the on-disk fingerprint index.
  stats_.metadata.updateBytes +=
      static_cast<uint64_t>(buffer_.size()) * kFpMetadataBytes;
  for (const Fp fp : fps) index_[fp] = containerId;
  containerFps_.push_back(std::move(fps));
  buffer_.clear();
  bufferFps_.clear();
  bufferBytes_ = 0;
}

void DedupEngine::ingestBackup(std::span<const ChunkRecord> records) {
  for (const auto& r : records) ingest(r);
}

const std::vector<Fp>& DedupEngine::containerFingerprints(uint32_t id) const {
  FDD_CHECK(id < containerFps_.size());
  return containerFps_[id];
}

}  // namespace freqdedup
