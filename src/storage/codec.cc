#include "storage/codec.h"

#include <cstring>
#include <stdexcept>

#if defined(FDD_HAVE_ZSTD)
#include <zstd.h>
#endif

namespace freqdedup {

namespace {

// --- Built-in LZ77 codec (ContainerCodec::kDeflate) ---
//
// LZ4-block-style framing, self-contained so the build needs no external
// compression library:
//
//   sequence := token literals [offset extMatch]
//   token    := 1 byte; high nibble = literal count, low nibble = match
//               length - kMinMatch; nibble value 15 extends with
//               255-continuation bytes (each byte adds 0..255, a byte < 255
//               terminates)
//   offset   := 2-byte little-endian backward distance, 1..65535
//
// The final sequence carries literals only: when input ends after the
// literals the match nibble must be 0 and no offset follows. Matches may
// overlap their own output (offset < match length), copied byte-by-byte.

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 16;

uint32_t load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void putLzLength(ByteVec& out, size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<uint8_t>(extra));
}

ByteVec lzCompress(ByteView raw) {
  ByteVec out;
  out.reserve(raw.size() / 2);
  const uint8_t* const base = raw.data();
  const size_t size = raw.size();
  // Candidate positions of previously seen 4-byte sequences, by hash. A
  // stale or colliding slot is harmless: every candidate is verified
  // byte-for-byte before use.
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);
  std::vector<bool> seen(size_t{1} << kHashBits, false);

  size_t litStart = 0;  // first literal not yet emitted
  size_t i = 0;
  const size_t matchLimit = size >= kMinMatch ? size - kMinMatch + 1 : 0;
  while (i < matchLimit) {
    const uint32_t h = hash4(load32(base + i));
    const size_t cand = table[h];
    const bool usable = seen[h] && cand < i && i - cand <= kMaxOffset &&
                        load32(base + cand) == load32(base + i);
    table[h] = static_cast<uint32_t>(i);
    seen[h] = true;
    if (!usable) {
      ++i;
      continue;
    }
    size_t len = kMinMatch;
    while (i + len < size && base[cand + len] == base[i + len]) ++len;

    const size_t lits = i - litStart;
    const size_t litNibble = lits < 15 ? lits : 15;
    const size_t matchNibble = (len - kMinMatch) < 15 ? (len - kMinMatch) : 15;
    out.push_back(static_cast<uint8_t>((litNibble << 4) | matchNibble));
    if (litNibble == 15) putLzLength(out, lits - 15);
    out.insert(out.end(), base + litStart, base + i);
    const size_t offset = i - cand;
    out.push_back(static_cast<uint8_t>(offset & 0xFF));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (matchNibble == 15) putLzLength(out, len - kMinMatch - 15);
    i += len;
    litStart = i;
  }
  // Trailing literals as a match-free final sequence.
  const size_t lits = size - litStart;
  const size_t litNibble = lits < 15 ? lits : 15;
  out.push_back(static_cast<uint8_t>(litNibble << 4));
  if (litNibble == 15) putLzLength(out, lits - 15);
  out.insert(out.end(), base + litStart, base + size);
  return out;
}

size_t getLzLength(ByteView in, size_t& at, size_t nibble) {
  size_t len = nibble;
  if (nibble != 15) return len;
  for (;;) {
    if (at >= in.size())
      throw std::runtime_error("codec: truncated length extension");
    const uint8_t b = in[at++];
    len += b;
    if (b < 255) return len;
    // A pathological run of 255s cannot claim more than the output bound
    // the caller enforces, but cap the loop against absurd streams anyway.
    if (len > (uint64_t{1} << 40))
      throw std::runtime_error("codec: length extension implausible");
  }
}

ByteVec lzDecompress(ByteView stored, uint64_t expectedRawSize) {
  ByteVec out;
  out.reserve(static_cast<size_t>(expectedRawSize));
  size_t at = 0;
  while (at < stored.size()) {
    const uint8_t token = stored[at++];
    const size_t lits = getLzLength(stored, at, token >> 4);
    if (lits > stored.size() - at)
      throw std::runtime_error("codec: literals overrun input");
    if (lits > expectedRawSize - out.size())
      throw std::runtime_error("codec: output overrun");
    out.insert(out.end(), stored.begin() + static_cast<ptrdiff_t>(at),
               stored.begin() + static_cast<ptrdiff_t>(at + lits));
    at += lits;
    if (at == stored.size()) {
      if ((token & 0x0F) != 0)
        throw std::runtime_error("codec: dangling match token");
      break;
    }
    if (stored.size() - at < 2)
      throw std::runtime_error("codec: truncated match offset");
    const size_t offset = static_cast<size_t>(stored[at]) |
                          (static_cast<size_t>(stored[at + 1]) << 8);
    at += 2;
    if (offset == 0 || offset > out.size())
      throw std::runtime_error("codec: match offset out of range");
    const size_t len = getLzLength(stored, at, token & 0x0F) + kMinMatch;
    if (len > expectedRawSize - out.size())
      throw std::runtime_error("codec: output overrun");
    // Byte-by-byte: matches may overlap the bytes they are producing.
    size_t src = out.size() - offset;
    for (size_t k = 0; k < len; ++k) out.push_back(out[src + k]);
  }
  if (out.size() != expectedRawSize)
    throw std::runtime_error("codec: decompressed size mismatch");
  return out;
}

}  // namespace

bool codecAvailable(ContainerCodec codec) {
  switch (codec) {
    case ContainerCodec::kNone:
    case ContainerCodec::kDeflate:
      return true;
    case ContainerCodec::kZstd:
#if defined(FDD_HAVE_ZSTD)
      return true;
#else
      return false;
#endif
  }
  return false;
}

ContainerCodec effectiveCodec(ContainerCodec requested) {
  if (requested == ContainerCodec::kZstd && !codecAvailable(requested))
    return ContainerCodec::kDeflate;
  return requested;
}

const char* codecName(ContainerCodec codec) {
  switch (codec) {
    case ContainerCodec::kNone:
      return "none";
    case ContainerCodec::kZstd:
      return "zstd";
    case ContainerCodec::kDeflate:
      return "deflate";
  }
  return "unknown";
}

std::optional<ContainerCodec> codecFromName(std::string_view name) {
  if (name == "none") return ContainerCodec::kNone;
  if (name == "zstd") return ContainerCodec::kZstd;
  if (name == "deflate") return ContainerCodec::kDeflate;
  return std::nullopt;
}

std::optional<ByteVec> compressBytes(ContainerCodec codec, ByteView raw) {
  if (raw.empty() || codec == ContainerCodec::kNone || !codecAvailable(codec))
    return std::nullopt;
  ByteVec compressed;
  switch (codec) {
    case ContainerCodec::kZstd: {
#if defined(FDD_HAVE_ZSTD)
      compressed.resize(ZSTD_compressBound(raw.size()));
      const size_t n = ZSTD_compress(compressed.data(), compressed.size(),
                                     raw.data(), raw.size(), /*level=*/3);
      if (ZSTD_isError(n)) return std::nullopt;
      compressed.resize(n);
      break;
#else
      return std::nullopt;
#endif
    }
    case ContainerCodec::kDeflate:
      compressed = lzCompress(raw);
      break;
    case ContainerCodec::kNone:
      return std::nullopt;
  }
  if (compressed.size() >= raw.size()) return std::nullopt;
  return compressed;
}

ByteVec decompressBytes(ContainerCodec codec, ByteView stored,
                        uint64_t expectedRawSize) {
  switch (codec) {
    case ContainerCodec::kNone: {
      if (stored.size() != expectedRawSize)
        throw std::runtime_error("codec: stored size mismatch");
      return ByteVec(stored.begin(), stored.end());
    }
    case ContainerCodec::kZstd: {
#if defined(FDD_HAVE_ZSTD)
      ByteVec out(static_cast<size_t>(expectedRawSize));
      const size_t n = ZSTD_decompress(out.data(), out.size(), stored.data(),
                                       stored.size());
      if (ZSTD_isError(n) || n != expectedRawSize)
        throw std::runtime_error("codec: zstd decompression failed");
      return out;
#else
      throw std::runtime_error("codec: zstd not supported in this build");
#endif
    }
    case ContainerCodec::kDeflate:
      return lzDecompress(stored, expectedRawSize);
  }
  throw std::runtime_error("codec: unknown codec");
}

}  // namespace freqdedup
