// Shared engine behind both BackupStore backends.
//
// ContainerBackupStore implements the full BackupStore contract against an
// injected KvStore: chunks accumulate in a ContainerBuilder, sealed
// containers are kept in RAM (memory mode) or written as CRC-framed files
// (file mode, `dir` non-empty), and the fingerprint index, blobs and backup
// manifests all live in the KvStore under one-byte key prefixes:
//
//   'C' + fp(u64)   -> containerId u32, entryIndex u32, size u32, refs u32
//   'B' + name      -> blob bytes (sealed recipes)
//   'M' + name      -> manifest: varint count, count * fp(u64), crc32c
//
// Locking: a single internal mutex guards all metadata (index, open
// container, stats). Writer operations are additionally serialized by the
// caller (DedupClient), as before. The read path (getChunk/getChunks/
// chunkLocator) holds the mutex only for index lookups — container file
// reads, parses and payload copies run outside it, so concurrent restores
// make overlapping I/O progress. Sealed containers are immutable and their
// ids are never reused; a read that races GC compaction (container file
// deleted, chunk relocated) re-resolves the fingerprint against the index
// and retries.
//
// GC invariants (see collectGarbage):
//  (1) a chunk is reclaimed only when its reference count is zero, i.e. no
//      recorded backup manifest references it;
//  (2) live chunks are copied forward and their new container is sealed and
//      indexed *before* any old container file is deleted, so a crash at any
//      point leaves every live chunk reachable (at worst duplicated in an
//      orphan container that recovery removes).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "kvstore/kvstore.h"
#include "obs/metrics.h"
#include "storage/backup_store.h"
#include "storage/block_cache.h"
#include "storage/cold_tier.h"

namespace freqdedup {

class LogKv;

class ContainerBackupStore : public BackupStore {
 public:
  ~ContainerBackupStore() override;
  ContainerBackupStore(const ContainerBackupStore&) = delete;
  ContainerBackupStore& operator=(const ContainerBackupStore&) = delete;

  [[nodiscard]] bool hasChunk(Fp cipherFp) const override;
  bool putChunk(Fp cipherFp, ByteView bytes) override;
  ByteVec getChunk(Fp cipherFp) override;
  std::vector<ByteVec> getChunks(std::span<const Fp> cipherFps) override;
  [[nodiscard]] std::vector<std::optional<ChunkPlacement>> chunkLocator(
      std::span<const Fp> cipherFps) const override;
  [[nodiscard]] uint32_t chunkRefCount(Fp cipherFp) const override;

  void putBlob(const std::string& name, ByteView bytes) override;
  std::optional<ByteVec> getBlob(const std::string& name) override;
  bool eraseBlob(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> listBlobs() override;

  void recordBackup(const std::string& name,
                    std::span<const Fp> chunkRefs) override;
  void recordBackupDeferred(const std::string& name,
                            std::span<const Fp> chunkRefs) override;
  void syncMetadataAsync(std::function<void(bool ok)> done) override;
  bool releaseBackup(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> listBackups() override;
  std::optional<std::vector<Fp>> backupRefs(const std::string& name) override;

  GcStats collectGarbage() override;
  StoreCheckReport verify() override;
  void flush() override;

  [[nodiscard]] BackupStoreStats stats() const override;
  [[nodiscard]] StoreReadStats readStats() const override;
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const override {
    return registry_.snapshot();
  }
  [[nodiscard]] size_t containerCount() const override;

  /// The block cache's own counters (hits/admissions/evictions/
  /// invalidations/bytes), for tests and diagnostics.
  [[nodiscard]] BlockCache::Stats readCacheStats() const {
    return readCache_.stats();
  }

  /// The store options this instance was opened with.
  [[nodiscard]] const StoreOptions& storeOptions() const { return options_; }

 protected:
  ContainerBackupStore(std::unique_ptr<KvStore> index, std::string dir,
                       const StoreOptions& options);

  /// File-mode recovery, run after the KvStore has replayed its log:
  /// validates every container file's trailer (full CRC + structure parse),
  /// deletes orphan containers and stray .tmp files, drops index entries
  /// whose container is missing or corrupt (renamed to *.corrupt), and
  /// rebuilds stats from the surviving index.
  StoreRecoveryStats recoverPersistentState();

 private:
  /// Decoded 'C' index entry.
  struct ChunkEntry {
    uint32_t containerId = 0;
    uint32_t entryIndex = 0;
    uint32_t size = 0;
    uint32_t refs = 0;
  };

  struct OpenChunk {
    ByteVec bytes;
    uint32_t refs = 0;  // carried refcount (non-zero only during GC)
  };

  static ByteVec chunkKey(Fp fp);
  static ByteVec encodeChunkEntry(const ChunkEntry& e);
  static ChunkEntry decodeChunkEntry(ByteView value);

  /// Shared body of recordBackup / recordBackupDeferred: stages the manifest
  /// swap + refcount deltas under mu_ and returns the LSN a durability wait
  /// must cover (0 for volatile backends).
  uint64_t stageRecordBackup(const std::string& name,
                             std::span<const Fp> chunkRefs);

  // Metadata helpers; all require mu_ to be held by the caller.
  [[nodiscard]] bool hasChunkLocked(Fp cipherFp) const;
  void stageChunkLocked(Fp fp, ByteView bytes, uint32_t refs);
  void sealOpenContainerLocked();
  void adjustRefsLocked(Fp fp, int64_t delta);
  std::optional<std::vector<Fp>> backupRefsLocked(const std::string& name);
  [[nodiscard]] std::vector<std::string> listNamesLocked(char prefix) const;
  /// Container for admin paths (GC/verify) that already hold mu_. Serves
  /// from the cache when present but never admits (single-visit scans).
  std::shared_ptr<const Container> loadContainerLocked(uint32_t id);
  void dropContainerLocked(uint32_t id);
  /// All 'C' entries grouped by container id.
  [[nodiscard]] std::unordered_map<
      uint32_t, std::vector<std::pair<Fp, ChunkEntry>>>
  chunkEntriesByContainerLocked();
  void flushIndexLocked();

  [[nodiscard]] std::string containerPath(uint32_t id) const;
  /// Cold-tier object key of a container (same name the hot tier uses).
  [[nodiscard]] static std::string coldKey(uint32_t id);
  /// Writes the container's frame to the hot tier (codec per StoreOptions)
  /// and returns its physical (on-disk) byte size.
  uint64_t writeContainerFile(const Container& container) const;

  /// A container's raw frame bytes and which tier served them. Tries the
  /// hot tier, then the cold tier, then the hot tier again — demotion puts
  /// cold before removing hot and promotion renames hot before removing
  /// cold, so one complete copy exists at every instant and the re-try
  /// covers reads racing either transition. Cold reads count tier.*.
  struct RawContainer {
    ByteVec bytes;
    bool fromCold = false;
  };
  [[nodiscard]] RawContainer readContainerRaw(uint32_t id) const;
  /// Reads + parses a container (either tier) and validates its id; throws
  /// std::runtime_error on any mismatch or I/O/parse failure. `fromCold`
  /// (optional) reports the serving tier; `rawBytes` (optional) hands back
  /// the frame bytes for promotion.
  [[nodiscard]] std::shared_ptr<const Container> parseContainerFile(
      uint32_t id, bool* fromCold = nullptr, ByteVec* rawBytes = nullptr) const;

  /// Copies a cold container's frame back into the hot tier (verbatim
  /// bytes) and removes the cold copy. No-op when the container is no
  /// longer live or already hot. Takes mu_ internally.
  void promoteContainer(uint32_t id, ByteView frame);
  /// Moves a hot container's frame to the cold tier; requires mu_.
  void demoteContainerLocked(uint32_t id);
  /// Records a read-path touch for demotion ordering (oldest-unread first).
  void noteContainerRead(uint32_t id);

  // Read path; must NOT be called with mu_ held.
  BlockCache::Entry fetchContainer(uint32_t id);
  BlockCache::Entry loadAndAdmit(uint32_t id);
  ByteVec serveChunk(Fp fp, ChunkEntry e);
  /// Extracts one chunk's payload after re-checking placement, fingerprint,
  /// bounds and the admission-time payload CRC. Throws on any mismatch
  /// (CRC failures also count store.crc_recheck_failures).
  ByteVec extractPayload(const BlockCache::Entry& cached, Fp fp,
                         const ChunkEntry& e);

  std::string dir_;  // empty in memory mode
  std::unique_ptr<KvStore> index_;
  /// index_ downcast when it is a LogKv (persistent backends), else null.
  /// Lets commit paths use the WAL durability API (sync outside the store
  /// mutex = group commit) without dynamic_cast on every operation.
  LogKv* logKv_ = nullptr;
  ContainerBuilder builder_;
  std::unordered_map<Fp, OpenChunk, FpHash> openChunks_;  // not yet sealed
  // Memory mode: authoritative container storage (with admission-time CRC
  // tables, so cached-read integrity checks behave identically to file mode).
  std::unordered_map<uint32_t, BlockCache::Entry> containers_;
  std::unordered_set<uint32_t> liveContainerIds_;
  uint32_t nextContainerId_ = 0;

  StoreOptions options_;
  /// Cold tier (file mode only, always at <dir>/cold). Reads consult it
  /// whenever it is non-null; ColdTierOptions only shape demotion.
  std::unique_ptr<ObjectStore> cold_;
  /// Containers currently living in the cold tier; guarded by mu_.
  std::unordered_set<uint32_t> coldContainerIds_;
  /// Physical (on-disk frame) bytes per live container; guarded by mu_.
  std::unordered_map<uint32_t, uint64_t> physicalBytes_;

  // Per-instance metrics. The registry lives for the store's lifetime, so a
  // fresh open (including one that ran recovery) starts every counter from
  // zero; the references below pre-resolve the hot-path metrics once.
  // Declared before readCache_, which registers its cache.* counters here.
  mutable obs::MetricsRegistry registry_;
  obs::Counter& putChunks_;
  obs::Counter& putBytes_;
  obs::Gauge& uniqueChunks_;
  obs::Gauge& storedBytes_;
  obs::Counter& chunkReads_;
  obs::Counter& batchReads_;
  obs::Counter& containerLoads_;
  obs::Counter& readCacheHits_;
  obs::Counter& readRetries_;
  obs::Counter& containerWrites_;
  obs::Counter& crcRecheckFailures_;
  obs::Counter& singleflightCoalesces_;
  obs::Histogram& containerLoadUs_;
  obs::Histogram& gcUs_;
  obs::Counter& compressedContainers_;
  obs::Counter& containerRawBytes_;
  obs::Counter& containerPhysicalBytes_;
  obs::Counter& coldReads_;
  obs::Counter& coldReadBytes_;
  obs::Counter& coldWriteBytes_;
  obs::Counter& demotions_;
  obs::Counter& promotions_;
  obs::Gauge& hotContainers_;
  obs::Gauge& hotBytes_;
  obs::Gauge& coldContainers_;
  obs::Gauge& coldBytes_;

  /// Guards the metadata members above (index, open container, ids, tier
  /// membership). The read cache and registry counters are internally
  /// synchronized and safe to touch without it.
  mutable std::mutex mu_;
  mutable BlockCache readCache_;  // byte-budgeted container block cache

  /// Read-recency for demotion ordering: container id -> last read
  /// generation. Guarded by tierMu_ (not mu_: the read path must not take
  /// the metadata mutex to record a touch).
  mutable std::mutex tierMu_;
  mutable std::unordered_map<uint32_t, uint64_t> lastReadGen_;
  mutable uint64_t readGen_ = 0;

  // Single-flight miss handling: concurrent read-path misses for one
  // container coalesce into a single file read; waiters are served from the
  // cache the loader admits to (or load themselves when the cache retains
  // nothing). Guarded by loadMu_, never held across file I/O.
  std::mutex loadMu_;
  std::condition_variable loadCv_;
  std::unordered_set<uint32_t> loading_;
};

/// In-memory backend: volatile, used by tests and experiments. Containers
/// stay resident and uncompressed; the block cache and tiering knobs do not
/// apply.
class MemBackupStore final : public ContainerBackupStore {
 public:
  explicit MemBackupStore(uint64_t containerBytes = kDefaultContainerBytes);
};

}  // namespace freqdedup
