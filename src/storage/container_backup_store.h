// Shared engine behind both BackupStore backends.
//
// ContainerBackupStore implements the full BackupStore contract against an
// injected KvStore: chunks accumulate in a ContainerBuilder, sealed
// containers are kept in RAM (memory mode) or written as CRC-framed files
// (file mode, `dir` non-empty), and the fingerprint index, blobs and backup
// manifests all live in the KvStore under one-byte key prefixes:
//
//   'C' + fp(u64)   -> containerId u32, entryIndex u32, size u32, refs u32
//   'B' + name      -> blob bytes (sealed recipes)
//   'M' + name      -> manifest: varint count, count * fp(u64), crc32c
//
// GC invariants (see collectGarbage):
//  (1) a chunk is reclaimed only when its reference count is zero, i.e. no
//      recorded backup manifest references it;
//  (2) live chunks are copied forward and their new container is sealed and
//      indexed *before* any old container file is deleted, so a crash at any
//      point leaves every live chunk reachable (at worst duplicated in an
//      orphan container that recovery removes).
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/lru_cache.h"
#include "kvstore/kvstore.h"
#include "storage/backup_store.h"

namespace freqdedup {

class ContainerBackupStore : public BackupStore {
 public:
  ~ContainerBackupStore() override;
  ContainerBackupStore(const ContainerBackupStore&) = delete;
  ContainerBackupStore& operator=(const ContainerBackupStore&) = delete;

  [[nodiscard]] bool hasChunk(Fp cipherFp) const override;
  bool putChunk(Fp cipherFp, ByteView bytes) override;
  ByteVec getChunk(Fp cipherFp) override;
  [[nodiscard]] uint32_t chunkRefCount(Fp cipherFp) const override;

  void putBlob(const std::string& name, ByteView bytes) override;
  std::optional<ByteVec> getBlob(const std::string& name) override;
  bool eraseBlob(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> listBlobs() override;

  void recordBackup(const std::string& name,
                    std::span<const Fp> chunkRefs) override;
  bool releaseBackup(const std::string& name) override;
  [[nodiscard]] std::vector<std::string> listBackups() override;
  std::optional<std::vector<Fp>> backupRefs(const std::string& name) override;

  GcStats collectGarbage() override;
  StoreCheckReport verify() override;
  void flush() override;

  [[nodiscard]] const BackupStoreStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] size_t containerCount() const override {
    return liveContainerIds_.size();
  }

 protected:
  ContainerBackupStore(std::unique_ptr<KvStore> index, std::string dir,
                       uint64_t containerBytes);

  /// File-mode recovery, run after the KvStore has replayed its log:
  /// validates every container file's trailer (full CRC + structure parse),
  /// deletes orphan containers and stray .tmp files, drops index entries
  /// whose container is missing or corrupt (renamed to *.corrupt), and
  /// rebuilds stats from the surviving index.
  StoreRecoveryStats recoverPersistentState();

 private:
  /// Decoded 'C' index entry.
  struct ChunkEntry {
    uint32_t containerId = 0;
    uint32_t entryIndex = 0;
    uint32_t size = 0;
    uint32_t refs = 0;
  };

  struct OpenChunk {
    ByteVec bytes;
    uint32_t refs = 0;  // carried refcount (non-zero only during GC)
  };

  static ByteVec chunkKey(Fp fp);
  static ByteVec encodeChunkEntry(const ChunkEntry& e);
  static ChunkEntry decodeChunkEntry(ByteView value);

  void stageChunk(Fp fp, ByteView bytes, uint32_t refs);
  void sealOpenContainer();
  void adjustRefs(Fp fp, int64_t delta);
  [[nodiscard]] std::string containerPath(uint32_t id) const;
  void writeContainerFile(const Container& container) const;
  std::shared_ptr<const Container> loadContainer(uint32_t id);
  void dropContainer(uint32_t id);
  /// All 'C' entries grouped by container id.
  [[nodiscard]] std::unordered_map<
      uint32_t, std::vector<std::pair<Fp, ChunkEntry>>>
  chunkEntriesByContainer();
  void flushIndex();

  std::string dir_;  // empty in memory mode
  std::unique_ptr<KvStore> index_;
  ContainerBuilder builder_;
  std::unordered_map<Fp, OpenChunk, FpHash> openChunks_;  // not yet sealed
  // Memory mode: authoritative container storage. File mode: read cache.
  std::unordered_map<uint32_t, std::shared_ptr<const Container>> containers_;
  LruCache<uint32_t, std::shared_ptr<const Container>> containerCache_;
  std::unordered_set<uint32_t> liveContainerIds_;
  uint32_t nextContainerId_ = 0;
  BackupStoreStats stats_;
};

/// In-memory backend: volatile, used by tests and experiments.
class MemBackupStore final : public ContainerBackupStore {
 public:
  explicit MemBackupStore(uint64_t containerBytes = kDefaultContainerBytes);
};

}  // namespace freqdedup
