// File recipes and key recipes (Section 2).
//
// A file recipe lists, in the file's original chunk order, the ciphertext
// fingerprints needed to reconstruct the file; a key recipe carries the
// per-chunk MLE keys. Recipes are metadata, are never deduplicated, and are
// protected with the user's own secret key via conventional (randomized)
// encryption — which is why the paper's adversary cannot read them
// (Section 3.3). With scrambling, the file recipe retains the *original*
// (pre-scramble) chunk order, so restore re-assembles the file correctly
// (Section 6.2).
#pragma once

#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/rng.h"
#include "crypto/aes.h"

namespace freqdedup {

struct RecipeEntry {
  Fp cipherFp = 0;
  uint32_t size = 0;  // ciphertext size in bytes
  /// Plaintext fingerprint, used by restore to verify each decrypted chunk
  /// end-to-end. 0 means "unknown" (legacy recipes) and skips the check.
  Fp plainFp = 0;

  friend bool operator==(const RecipeEntry&, const RecipeEntry&) = default;
};

struct FileRecipe {
  std::string fileName;
  uint64_t fileSize = 0;
  std::vector<RecipeEntry> entries;

  friend bool operator==(const FileRecipe&, const FileRecipe&) = default;
};

struct KeyRecipe {
  std::vector<AesKey> keys;  // keys[i] decrypts the chunk of entries[i]

  friend bool operator==(const KeyRecipe&, const KeyRecipe&) = default;
};

// Recipe wire format: magic u32, version u32, payload, trailing CRC-32C.
// Parsers throw std::runtime_error on any malformed input and validate all
// counts against the remaining input size before allocating.
ByteVec serializeFileRecipe(const FileRecipe& recipe);
FileRecipe parseFileRecipe(ByteView bytes);

ByteVec serializeKeyRecipe(const KeyRecipe& recipe);
KeyRecipe parseKeyRecipe(ByteView bytes);

/// Conventional (randomized) encryption of recipe bytes under the user key:
/// a fresh random IV is prepended to the AES-256-CTR ciphertext. The IV is
/// drawn from `rng`, so CTR security rests on that stream never repeating
/// under one key: production callers MUST seed it from OS entropy
/// (secureSeed()) — a fixed or restart-deterministic seed replays the IV
/// sequence and keystream reuse exposes the recipes. Deterministic seeds
/// are for tests only.
ByteVec sealWithUserKey(const AesKey& userKey, ByteView plaintext, Rng& rng);

/// Inverse of sealWithUserKey; throws std::runtime_error on truncated input.
ByteVec openWithUserKey(const AesKey& userKey, ByteView sealed);

}  // namespace freqdedup
