#include "storage/recipe.h"

#include <stdexcept>

#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {

constexpr uint32_t kFileRecipeMagic = 0x46445246;  // "FDRF"
constexpr uint32_t kKeyRecipeMagic = 0x4644524B;   // "FDRK"
constexpr uint32_t kRecipeVersion = 2;
constexpr size_t kFileEntryBytes = 8 + 8 + 4;  // cipherFp, plainFp, size

/// Checks the trailing CRC and returns the covered body; every subsequent
/// read is bounds-checked against the body only, never the CRC bytes.
ByteView checkedBody(ByteView bytes) {
  if (bytes.size() < 12) throw std::runtime_error("recipe: input too short");
  const size_t bodySize = bytes.size() - 4;
  if (crc32c(bytes.subspan(0, bodySize)) != getU32(bytes, bodySize))
    throw std::runtime_error("recipe: checksum mismatch");
  return bytes.subspan(0, bodySize);
}

/// Validates magic and version; advances `offset` past them.
void checkHeader(ByteView body, size_t& offset, uint32_t magic) {
  if (body.size() < 8) throw std::runtime_error("recipe: truncated header");
  if (getU32(body, offset) != magic)
    throw std::runtime_error("recipe: bad magic");
  offset += 4;
  if (getU32(body, offset) != kRecipeVersion)
    throw std::runtime_error("recipe: unsupported version");
  offset += 4;
}

}  // namespace

ByteVec serializeFileRecipe(const FileRecipe& recipe) {
  ByteVec out;
  putU32(out, kFileRecipeMagic);
  putU32(out, kRecipeVersion);
  putLengthPrefixedString(out, recipe.fileName);
  putU64(out, recipe.fileSize);
  putVarint(out, recipe.entries.size());
  for (const auto& e : recipe.entries) {
    putU64(out, e.cipherFp);
    putU64(out, e.plainFp);
    putU32(out, e.size);
  }
  putU32(out, crc32c(out));
  return out;
}

FileRecipe parseFileRecipe(ByteView bytes) {
  const ByteView body = checkedBody(bytes);
  size_t offset = 0;
  checkHeader(body, offset, kFileRecipeMagic);
  FileRecipe recipe;
  recipe.fileName = getLengthPrefixedString(body, offset);
  if (offset + 8 > body.size())
    throw std::runtime_error("recipe: truncated file size");
  recipe.fileSize = getU64(body, offset);
  offset += 8;
  const auto count = getVarint(body, offset);
  if (!count) throw std::runtime_error("recipe: truncated entry count");
  // Validate before allocating: a corrupt count must not trigger a huge
  // reserve. Division avoids overflow on adversarial counts.
  if (*count > (body.size() - offset) / kFileEntryBytes)
    throw std::runtime_error("recipe: truncated entries");
  recipe.entries.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    RecipeEntry e;
    e.cipherFp = getU64(body, offset);
    offset += 8;
    e.plainFp = getU64(body, offset);
    offset += 8;
    e.size = getU32(body, offset);
    offset += 4;
    recipe.entries.push_back(e);
  }
  if (offset != body.size())
    throw std::runtime_error("recipe: trailing garbage");
  return recipe;
}

ByteVec serializeKeyRecipe(const KeyRecipe& recipe) {
  ByteVec out;
  putU32(out, kKeyRecipeMagic);
  putU32(out, kRecipeVersion);
  putVarint(out, recipe.keys.size());
  for (const auto& key : recipe.keys)
    appendBytes(out, ByteView(key.data(), key.size()));
  putU32(out, crc32c(out));
  return out;
}

KeyRecipe parseKeyRecipe(ByteView bytes) {
  const ByteView body = checkedBody(bytes);
  size_t offset = 0;
  checkHeader(body, offset, kKeyRecipeMagic);
  const auto count = getVarint(body, offset);
  if (!count) throw std::runtime_error("recipe: truncated key count");
  if (*count > (body.size() - offset) / kAesKeyBytes)
    throw std::runtime_error("recipe: truncated keys");
  KeyRecipe recipe;
  recipe.keys.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    AesKey key{};
    std::copy(body.begin() + static_cast<ptrdiff_t>(offset),
              body.begin() + static_cast<ptrdiff_t>(offset + kAesKeyBytes),
              key.begin());
    offset += kAesKeyBytes;
    recipe.keys.push_back(key);
  }
  if (offset != body.size())
    throw std::runtime_error("recipe: trailing garbage");
  return recipe;
}

ByteVec sealWithUserKey(const AesKey& userKey, ByteView plaintext, Rng& rng) {
  AesIv iv{};
  for (size_t i = 0; i < iv.size(); i += 8) {
    const uint64_t word = rng.next();
    for (size_t j = 0; j < 8; ++j)
      iv[i + j] = static_cast<uint8_t>(word >> (8 * j));
  }
  ByteVec out(iv.begin(), iv.end());
  const ByteVec body = aesCtrEncrypt(userKey, iv, plaintext);
  appendBytes(out, body);
  return out;
}

ByteVec openWithUserKey(const AesKey& userKey, ByteView sealed) {
  if (sealed.size() < kAesIvBytes)
    throw std::runtime_error("recipe: sealed blob too short");
  AesIv iv{};
  std::copy(sealed.begin(), sealed.begin() + kAesIvBytes, iv.begin());
  return aesCtrDecrypt(userKey, iv, sealed.subspan(kAesIvBytes));
}

}  // namespace freqdedup
