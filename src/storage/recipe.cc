#include "storage/recipe.h"

#include <stdexcept>

#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {

void putString(ByteVec& out, const std::string& s) {
  putVarint(out, s.size());
  appendBytes(out,
              ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

std::string getString(ByteView in, size_t& offset) {
  const auto len = getVarint(in, offset);
  if (!len || offset + *len > in.size())
    throw std::runtime_error("recipe: truncated string");
  std::string s(reinterpret_cast<const char*>(in.data() + offset),
                static_cast<size_t>(*len));
  offset += static_cast<size_t>(*len);
  return s;
}

void checkTrailingCrc(ByteView bytes) {
  if (bytes.size() < 4) throw std::runtime_error("recipe: input too short");
  if (crc32c(bytes.subspan(0, bytes.size() - 4)) !=
      getU32(bytes, bytes.size() - 4))
    throw std::runtime_error("recipe: checksum mismatch");
}

}  // namespace

ByteVec serializeFileRecipe(const FileRecipe& recipe) {
  ByteVec out;
  putString(out, recipe.fileName);
  putU64(out, recipe.fileSize);
  putVarint(out, recipe.entries.size());
  for (const auto& e : recipe.entries) {
    putU64(out, e.cipherFp);
    putU32(out, e.size);
  }
  putU32(out, crc32c(out));
  return out;
}

FileRecipe parseFileRecipe(ByteView bytes) {
  checkTrailingCrc(bytes);
  size_t offset = 0;
  FileRecipe recipe;
  recipe.fileName = getString(bytes, offset);
  recipe.fileSize = getU64(bytes, offset);
  offset += 8;
  const auto count = getVarint(bytes, offset);
  if (!count || offset + *count * 12 + 4 > bytes.size())
    throw std::runtime_error("recipe: truncated entries");
  recipe.entries.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    RecipeEntry e;
    e.cipherFp = getU64(bytes, offset);
    offset += 8;
    e.size = getU32(bytes, offset);
    offset += 4;
    recipe.entries.push_back(e);
  }
  return recipe;
}

ByteVec serializeKeyRecipe(const KeyRecipe& recipe) {
  ByteVec out;
  putVarint(out, recipe.keys.size());
  for (const auto& key : recipe.keys)
    appendBytes(out, ByteView(key.data(), key.size()));
  putU32(out, crc32c(out));
  return out;
}

KeyRecipe parseKeyRecipe(ByteView bytes) {
  checkTrailingCrc(bytes);
  size_t offset = 0;
  const auto count = getVarint(bytes, offset);
  if (!count || offset + *count * kAesKeyBytes + 4 > bytes.size())
    throw std::runtime_error("recipe: truncated keys");
  KeyRecipe recipe;
  recipe.keys.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    AesKey key{};
    std::copy(bytes.begin() + static_cast<ptrdiff_t>(offset),
              bytes.begin() + static_cast<ptrdiff_t>(offset + kAesKeyBytes),
              key.begin());
    offset += kAesKeyBytes;
    recipe.keys.push_back(key);
  }
  return recipe;
}

ByteVec sealWithUserKey(const AesKey& userKey, ByteView plaintext, Rng& rng) {
  AesIv iv{};
  for (size_t i = 0; i < iv.size(); i += 8) {
    const uint64_t word = rng.next();
    for (size_t j = 0; j < 8; ++j)
      iv[i + j] = static_cast<uint8_t>(word >> (8 * j));
  }
  ByteVec out(iv.begin(), iv.end());
  const ByteVec body = aesCtrEncrypt(userKey, iv, plaintext);
  appendBytes(out, body);
  return out;
}

ByteVec openWithUserKey(const AesKey& userKey, ByteView sealed) {
  if (sealed.size() < kAesIvBytes)
    throw std::runtime_error("recipe: sealed blob too short");
  AesIv iv{};
  std::copy(sealed.begin(), sealed.begin() + kAesIvBytes, iv.begin());
  return aesCtrDecrypt(userKey, iv, sealed.subspan(kAesIvBytes));
}

}  // namespace freqdedup
