// Thread-safe bounded LRU cache of parsed, immutable containers for the
// restore read path, keyed by container id.
//
// Container ids are never reused (ContainerBackupStore allocates them
// monotonically, and recovery resumes past the on-disk maximum), so a cached
// container can never alias different bytes under the same id; entries are
// invalidated when GC compaction deletes their container purely to release
// memory and to keep the retry path from re-serving a doomed copy.
//
// Every admitted container carries a per-chunk payload CRC table computed at
// admission, so each chunk served from a cache hit is re-checked (CRC here,
// ciphertext fingerprint in the store) before its bytes leave the store —
// in-memory corruption of a cached copy surfaces as an error, never as
// silently wrong bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/lru_cache.h"
#include "obs/metrics.h"
#include "storage/container.h"

namespace freqdedup {

class ContainerReadCache {
 public:
  /// A parsed container plus the CRC-32C of each chunk payload, computed
  /// once at admission. Both members are shared and immutable, so entries
  /// stay valid for in-flight readers after invalidation or eviction.
  struct Entry {
    std::shared_ptr<const Container> container;
    std::shared_ptr<const std::vector<uint32_t>> payloadCrcs;
  };

  /// Point-in-time view of the cache's counters (which live in a
  /// MetricsRegistry as `cache.*`; this struct is the legacy-shaped view).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admissions = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
  };

  /// `capacityContainers` bounds the cache in containers: 0 disables caching
  /// (admit still returns usable entries, nothing is retained) and
  /// kUnboundedReadCache (SIZE_MAX) never evicts. The single-argument form
  /// keeps counters in a private registry; pass the owning store's registry
  /// to surface them as that store's `cache.*` metrics. Counter updates are
  /// wait-free and never taken under the cache mutex.
  explicit ContainerReadCache(size_t capacityContainers);
  ContainerReadCache(size_t capacityContainers, obs::MetricsRegistry& registry);

  /// Cached entry for a container id, promoting it to most-recently-used.
  /// `recordStats` = false makes the lookup an internal probe (still
  /// promoting) that leaves the hit/miss counters untouched — used by the
  /// single-flight loader's re-check so one logical miss is not counted
  /// twice.
  std::optional<Entry> get(uint32_t id, bool recordStats = true);

  /// Builds the entry (computing the payload CRC table) and retains it when
  /// capacity allows. Returns the entry either way.
  Entry admit(uint32_t id, std::shared_ptr<const Container> container);

  /// Drops a container (GC compaction/delete). No-op when absent.
  void invalidate(uint32_t id);

  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t size() const;

  /// The per-chunk payload CRC table admit() computes; exposed so the
  /// memory backend can build identical entries for resident containers.
  static Entry makeEntry(std::shared_ptr<const Container> container);

 private:
  ContainerReadCache(size_t capacityContainers, obs::MetricsRegistry* registry);

  std::unique_ptr<obs::MetricsRegistry> ownedRegistry_;  // standalone ctor
  obs::MetricsRegistry& registry_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& admissions_;
  obs::Counter& invalidations_;
  obs::Counter& evictions_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::optional<LruCache<uint32_t, Entry>> lru_;  // absent when capacity 0
};

}  // namespace freqdedup
