#include "storage/container_backup_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "common/varint.h"
#include "kvstore/logkv.h"
#include "kvstore/memkv.h"
#include "obs/trace.h"

namespace freqdedup {

namespace {

constexpr char kChunkKeyPrefix = 'C';
constexpr char kBlobKeyPrefix = 'B';
constexpr char kManifestKeyPrefix = 'M';

/// A read that races GC compaction re-resolves its fingerprint and retries
/// this many times before the failure is treated as real corruption.
constexpr int kReadRetryAttempts = 3;

ByteVec prefixedKey(char prefix, const std::string& name) {
  ByteVec key;
  key.reserve(1 + name.size());
  key.push_back(static_cast<uint8_t>(prefix));
  appendBytes(key, ByteView(reinterpret_cast<const uint8_t*>(name.data()),
                            name.size()));
  return key;
}

ByteVec manifestKey(const std::string& name) {
  return prefixedKey(kManifestKeyPrefix, name);
}

ByteVec blobKey(const std::string& name) {
  return prefixedKey(kBlobKeyPrefix, name);
}

/// Manifest payload: varint count, count * fp(u64), trailing CRC-32C.
ByteVec serializeManifest(std::span<const Fp> refs) {
  ByteVec out;
  putVarint(out, refs.size());
  for (const Fp fp : refs) putU64(out, fp);
  putU32(out, crc32c(out));
  return out;
}

std::vector<Fp> parseManifest(ByteView bytes) {
  if (bytes.size() < 5)
    throw std::runtime_error("manifest: input too short");
  const size_t bodySize = bytes.size() - 4;
  if (crc32c(bytes.subspan(0, bodySize)) != getU32(bytes, bodySize))
    throw std::runtime_error("manifest: checksum mismatch");
  const ByteView body = bytes.subspan(0, bodySize);
  size_t offset = 0;
  const auto count = getVarint(body, offset);
  if (!count) throw std::runtime_error("manifest: truncated header");
  if (*count > (bodySize - offset) / 8)
    throw std::runtime_error("manifest: truncated refs");
  std::vector<Fp> refs;
  refs.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    refs.push_back(getU64(body, offset));
    offset += 8;
  }
  if (offset != bodySize)
    throw std::runtime_error("manifest: trailing garbage");
  return refs;
}

/// Container file ids; files that are not <8 digits>.fdc are ignored.
std::optional<uint32_t> containerIdFromPath(const std::filesystem::path& p) {
  if (p.extension() != ".fdc") return std::nullopt;
  const std::string stem = p.stem().string();
  if (stem.empty() || stem.size() > 10) return std::nullopt;
  uint64_t id = 0;
  for (const char c : stem) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  if (id > UINT32_MAX) return std::nullopt;
  return static_cast<uint32_t>(id);
}

}  // namespace

ByteVec ContainerBackupStore::chunkKey(Fp fp) {
  ByteVec key;
  key.push_back(static_cast<uint8_t>(kChunkKeyPrefix));
  putU64(key, fp);
  return key;
}

ByteVec ContainerBackupStore::encodeChunkEntry(const ChunkEntry& e) {
  ByteVec value;
  putU32(value, e.containerId);
  putU32(value, e.entryIndex);
  putU32(value, e.size);
  putU32(value, e.refs);
  return value;
}

ContainerBackupStore::ChunkEntry ContainerBackupStore::decodeChunkEntry(
    ByteView value) {
  if (value.size() != 16)
    throw std::runtime_error("BackupStore: malformed index entry");
  return ChunkEntry{getU32(value, 0), getU32(value, 4), getU32(value, 8),
                    getU32(value, 12)};
}

ContainerBackupStore::ContainerBackupStore(std::unique_ptr<KvStore> index,
                                           std::string dir,
                                           const StoreOptions& options)
    : dir_(std::move(dir)),
      index_(std::move(index)),
      builder_(options.containerBytes),
      options_(options),
      putChunks_(registry_.counter("store.put_chunks")),
      putBytes_(registry_.counter("store.put_bytes")),
      uniqueChunks_(registry_.gauge("store.unique_chunks")),
      storedBytes_(registry_.gauge("store.stored_bytes")),
      chunkReads_(registry_.counter("store.chunk_reads")),
      batchReads_(registry_.counter("store.batch_reads")),
      containerLoads_(registry_.counter("store.container_loads")),
      readCacheHits_(registry_.counter("store.read_cache_hits")),
      readRetries_(registry_.counter("store.read_retries")),
      containerWrites_(registry_.counter("store.container_writes")),
      crcRecheckFailures_(registry_.counter("store.crc_recheck_failures")),
      singleflightCoalesces_(
          registry_.counter("store.singleflight_coalesces")),
      containerLoadUs_(registry_.histogram("store.container_load_us")),
      gcUs_(registry_.histogram("store.gc_us")),
      compressedContainers_(registry_.counter("store.compressed_containers")),
      containerRawBytes_(registry_.counter("store.container_raw_bytes")),
      containerPhysicalBytes_(
          registry_.counter("store.container_physical_bytes")),
      coldReads_(registry_.counter("tier.cold_reads")),
      coldReadBytes_(registry_.counter("tier.cold_read_bytes")),
      coldWriteBytes_(registry_.counter("tier.cold_write_bytes")),
      demotions_(registry_.counter("tier.demotions")),
      promotions_(registry_.counter("tier.promotions")),
      hotContainers_(registry_.gauge("tier.hot_containers")),
      hotBytes_(registry_.gauge("tier.hot_bytes")),
      coldContainers_(registry_.gauge("tier.cold_containers")),
      coldBytes_(registry_.gauge("tier.cold_bytes")),
      readCache_(dir_.empty() ? 0 : options.blockCacheBytes, registry_,
                 BlockCache::makePolicy(options.eviction)) {
  logKv_ = dynamic_cast<LogKv*>(index_.get());
  // Surface the index's WAL/checkpoint/recovery activity (wal.*, ckpt.*)
  // in this store's registry alongside the store.* metrics.
  if (logKv_ != nullptr) logKv_->bindMetrics(registry_);
  // The cold tier always lives at <dir>/cold, so a store reopened with
  // different options (or none) still finds every demoted container.
  // ColdTierOptions shape only demotion and the simulated performance.
  if (!dir_.empty())
    cold_ = std::make_unique<LocalObjectStore>(dir_ + "/cold",
                                               options.coldTier.sim);
}

ContainerBackupStore::~ContainerBackupStore() {
  if (!dir_.empty()) {
    try {
      flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Destructors must not throw; an unflushed open container is the same
      // state as a crash before flush(), which recovery tolerates.
    }
  }
}

std::string ContainerBackupStore::containerPath(uint32_t id) const {
  return dir_ + "/containers/" + coldKey(id);
}

std::string ContainerBackupStore::coldKey(uint32_t id) {
  char name[32];
  snprintf(name, sizeof(name), "%08u.fdc", id);
  return name;
}

bool ContainerBackupStore::hasChunkLocked(Fp cipherFp) const {
  if (openChunks_.contains(cipherFp)) return true;
  return index_->contains(chunkKey(cipherFp));
}

bool ContainerBackupStore::hasChunk(Fp cipherFp) const {
  std::lock_guard lock(mu_);
  return hasChunkLocked(cipherFp);
}

uint32_t ContainerBackupStore::chunkRefCount(Fp cipherFp) const {
  std::lock_guard lock(mu_);
  const auto it = openChunks_.find(cipherFp);
  if (it != openChunks_.end()) return it->second.refs;
  const auto value = index_->get(chunkKey(cipherFp));
  if (!value) return 0;
  return decodeChunkEntry(*value).refs;
}

bool ContainerBackupStore::putChunk(Fp cipherFp, ByteView bytes) {
  std::lock_guard lock(mu_);
  putChunks_.add();
  putBytes_.add(bytes.size());
  if (hasChunkLocked(cipherFp)) return false;
  stageChunkLocked(cipherFp, bytes, /*refs=*/0);
  uniqueChunks_.add(1);
  storedBytes_.add(static_cast<int64_t>(bytes.size()));
  return true;
}

void ContainerBackupStore::stageChunkLocked(Fp fp, ByteView bytes,
                                            uint32_t refs) {
  if (builder_.wouldOverflow(static_cast<uint32_t>(bytes.size())))
    sealOpenContainerLocked();
  builder_.add(fp, static_cast<uint32_t>(bytes.size()), bytes);
  openChunks_.emplace(fp,
                      OpenChunk{ByteVec(bytes.begin(), bytes.end()), refs});
}

void ContainerBackupStore::sealOpenContainerLocked() {
  if (builder_.empty()) return;
  const uint32_t id = nextContainerId_++;
  Container container = builder_.seal(id);
  // Persist the container before its index entries: a crash in between
  // leaves only an orphan container file, which recovery deletes.
  if (!dir_.empty()) {
    const uint64_t physical = writeContainerFile(container);
    physicalBytes_[id] = physical;
    hotContainers_.add(1);
    hotBytes_.add(static_cast<int64_t>(physical));
  }
  for (uint32_t i = 0; i < container.entries.size(); ++i) {
    const Fp fp = container.entries[i].fp;
    const ChunkEntry e{id, i, container.entries[i].size,
                       openChunks_.at(fp).refs};
    index_->put(chunkKey(fp), encodeChunkEntry(e));
  }
  liveContainerIds_.insert(id);
  containerWrites_.add();
  auto shared = std::make_shared<const Container>(std::move(container));
  if (dir_.empty()) {
    containers_.emplace(id, BlockCache::makeEntry(std::move(shared)));
  } else if (readCache_.enabled()) {
    // Keep the freshly sealed container hot. Admission CRCs its payloads
    // while we hold the store lock — an O(container) pass on top of a seal
    // that is already O(container) — and is skipped entirely when the
    // cache cannot retain the entry anyway.
    readCache_.admit(id, std::move(shared));
  }
  openChunks_.clear();
}

uint64_t ContainerBackupStore::writeContainerFile(
    const Container& container) const {
  // Atomic write: containers become visible under their final name only
  // once fully written, so a torn write can never masquerade as a
  // container. Recovery deletes stray .tmp files.
  const ByteVec frame = serializeContainer(container, options_.codec);
  if (!frame.empty() && getU32(frame, 0) == kContainerMagicV2)
    compressedContainers_.add();
  containerRawBytes_.add(container.data.size());
  containerPhysicalBytes_.add(frame.size());
  const std::string path = containerPath(container.id);
  writeFile(path + ".tmp", frame);
  std::filesystem::rename(path + ".tmp", path);
  return frame.size();
}

std::shared_ptr<const Container> ContainerBackupStore::loadContainerLocked(
    uint32_t id) {
  if (dir_.empty()) {
    const auto it = containers_.find(id);
    if (it == containers_.end())
      throw std::runtime_error("BackupStore: container missing: " +
                               std::to_string(id));
    return it->second.container;
  }
  if (auto cached = readCache_.get(id)) return cached->container;
  // Deliberately not admitted: admin scans (GC, verify) visit each
  // container once, so admission would only pay the CRC-table pass and
  // evict the restore working set from the bounded cache. Cold containers
  // are likewise read in place, not promoted — a scan must not drag the
  // whole cold tier back into the hot directory.
  return parseContainerFile(id);
}

ContainerBackupStore::RawContainer ContainerBackupStore::readContainerRaw(
    uint32_t id) const {
  try {
    return {readFile(containerPath(id)), /*fromCold=*/false};
  } catch (const std::exception&) {
    // Fall through to the cold tier.
  }
  if (cold_ && cold_->exists(coldKey(id))) {
    try {
      RawContainer raw{cold_->get(coldKey(id)), /*fromCold=*/true};
      coldReads_.add();
      coldReadBytes_.add(raw.bytes.size());
      return raw;
    } catch (const std::exception&) {
      // A promotion may have moved it back to hot between exists and get.
    }
  }
  // Final attempt against the hot tier (covers a read racing a promotion);
  // its failure is the error the caller sees.
  return {readFile(containerPath(id)), /*fromCold=*/false};
}

std::shared_ptr<const Container> ContainerBackupStore::parseContainerFile(
    uint32_t id, bool* fromCold, ByteVec* rawBytes) const {
  RawContainer raw = readContainerRaw(id);
  auto container =
      std::make_shared<const Container>(parseContainer(raw.bytes));
  if (container->id != id)
    throw std::runtime_error("BackupStore: container id mismatch in " +
                             containerPath(id));
  if (fromCold != nullptr) *fromCold = raw.fromCold;
  if (rawBytes != nullptr) *rawBytes = std::move(raw.bytes);
  return container;
}

void ContainerBackupStore::promoteContainer(uint32_t id, ByteView frame) {
  // Entirely under mu_: the cold-copy removal must not race a GC pass that
  // re-demoted the container, or the only surviving copy could be deleted.
  std::lock_guard lock(mu_);
  if (!liveContainerIds_.contains(id) || !coldContainerIds_.contains(id))
    return;
  const std::string path = containerPath(id);
  writeFile(path + ".tmp", frame);
  std::filesystem::rename(path + ".tmp", path);
  cold_->remove(coldKey(id));
  coldContainerIds_.erase(id);
  const uint64_t physical = frame.size();
  physicalBytes_[id] = physical;
  promotions_.add();
  hotContainers_.add(1);
  hotBytes_.add(static_cast<int64_t>(physical));
  coldContainers_.sub(1);
  coldBytes_.sub(static_cast<int64_t>(physical));
}

void ContainerBackupStore::demoteContainerLocked(uint32_t id) {
  // Cold copy lands before the hot file goes away, so a crash (or a
  // concurrent reader) at any instant still finds one complete copy.
  const ByteVec frame = readFile(containerPath(id));
  cold_->put(coldKey(id), frame);
  std::filesystem::remove(containerPath(id));
  coldContainerIds_.insert(id);
  physicalBytes_[id] = frame.size();
  demotions_.add();
  coldWriteBytes_.add(frame.size());
  hotContainers_.sub(1);
  hotBytes_.sub(static_cast<int64_t>(frame.size()));
  coldContainers_.add(1);
  coldBytes_.add(static_cast<int64_t>(frame.size()));
}

void ContainerBackupStore::noteContainerRead(uint32_t id) {
  std::lock_guard lock(tierMu_);
  lastReadGen_[id] = ++readGen_;
}

BlockCache::Entry ContainerBackupStore::loadAndAdmit(uint32_t id) {
  if (!readCache_.enabled()) {
    // Cache disabled: nothing a loader admits could serve a waiter, so
    // single-flight coalescing would only serialize concurrent misses.
    // Every miss loads independently, in parallel.
    obs::ObsSpan span(&containerLoadUs_, "store.container_load", "store");
    bool fromCold = false;
    ByteVec raw;
    auto container = parseContainerFile(id, &fromCold, &raw);
    containerLoads_.add();
    if (fromCold) promoteContainer(id, raw);
    return BlockCache::makeEntry(std::move(container));
  }
  {
    std::unique_lock lock(loadMu_);
    bool waited = false;
    for (;;) {
      // Re-check under loadMu_ on every pass: a loader that finished —
      // whether we waited on it or it completed between our fetchContainer
      // miss and this lock — has already admitted the container, and
      // re-reading the file would both duplicate I/O and double-count
      // containerLoads. (recordStats=false: fetchContainer already counted
      // this logical lookup's miss.)
      if (auto cached = readCache_.get(id, /*recordStats=*/false)) {
        readCacheHits_.add();
        return *cached;
      }
      if (!loading_.contains(id)) break;
      if (!waited) {
        // This miss joined an in-flight load instead of issuing its own
        // file read — the coalescing the single-flight gate exists for.
        waited = true;
        singleflightCoalesces_.add();
      }
      loadCv_.wait(lock);
    }
    loading_.insert(id);
  }
  const auto finishLoad = [&] {
    {
      std::lock_guard lock(loadMu_);
      loading_.erase(id);
    }
    loadCv_.notify_all();
  };
  try {
    obs::ObsSpan span(&containerLoadUs_, "store.container_load", "store");
    bool fromCold = false;
    ByteVec raw;
    auto container = parseContainerFile(id, &fromCold, &raw);
    span.finish();
    containerLoads_.add();
    BlockCache::Entry entry = readCache_.admit(id, std::move(container));
    // A cold hit is promoted with the verbatim frame bytes we just read —
    // no re-serialization, so the hot copy is bit-identical to the cold one
    // (same codec, same CRC). The promotion itself re-checks liveness and
    // tier membership under mu_.
    if (fromCold) promoteContainer(id, raw);
    // Close the admit-vs-GC race: if GC compacted this container while we
    // were reading it (its invalidate() ran before our admit()), drop the
    // re-admitted entry so a dead container never pins a cache slot. GC
    // holds mu_ for its whole pass, so this check is before-or-after, never
    // interleaved; our local entry stays valid either way (ids are never
    // reused and the bytes are correct for the placement we resolved).
    {
      std::lock_guard lock(mu_);
      if (!liveContainerIds_.contains(id)) readCache_.invalidate(id);
    }
    finishLoad();
    return entry;
  } catch (...) {
    finishLoad();
    throw;
  }
}

BlockCache::Entry ContainerBackupStore::fetchContainer(uint32_t id) {
  if (dir_.empty()) {
    std::lock_guard lock(mu_);
    const auto it = containers_.find(id);
    if (it == containers_.end())
      throw std::runtime_error("BackupStore: container missing: " +
                               std::to_string(id));
    // Resident containers are the memory backend's cache equivalent.
    readCacheHits_.add();
    return it->second;
  }
  noteContainerRead(id);
  if (auto cached = readCache_.get(id)) {
    readCacheHits_.add();
    return *cached;
  }
  return loadAndAdmit(id);
}

void ContainerBackupStore::dropContainerLocked(uint32_t id) {
  containers_.erase(id);
  readCache_.invalidate(id);
  liveContainerIds_.erase(id);
  if (!dir_.empty()) {
    const auto sizeIt = physicalBytes_.find(id);
    const uint64_t physical =
        sizeIt == physicalBytes_.end() ? 0 : sizeIt->second;
    if (coldContainerIds_.erase(id) > 0) {
      if (cold_) cold_->remove(coldKey(id));
      coldContainers_.sub(1);
      coldBytes_.sub(static_cast<int64_t>(physical));
    } else {
      std::filesystem::remove(containerPath(id));
      hotContainers_.sub(1);
      hotBytes_.sub(static_cast<int64_t>(physical));
    }
    physicalBytes_.erase(id);
    std::lock_guard tierLock(tierMu_);
    lastReadGen_.erase(id);
  }
}

ByteVec ContainerBackupStore::extractPayload(
    const BlockCache::Entry& cached, Fp fp, const ChunkEntry& e) {
  const Container& container = *cached.container;
  if (e.entryIndex >= container.entries.size())
    throw std::runtime_error("BackupStore: index entry out of range for " +
                             fpToHex(fp));
  const ContainerEntry& entry = container.entries[e.entryIndex];
  if (entry.fp != fp || entry.size != e.size ||
      entry.dataOffset + entry.size > container.data.size())
    throw std::runtime_error("BackupStore: container/index mismatch for " +
                             fpToHex(fp));
  const ByteView payload =
      ByteView(container.data).subspan(entry.dataOffset, entry.size);
  // Every serve — cache hit or fresh load — re-checks the payload against
  // the CRC computed at admission, so a corrupted cached copy can never be
  // served as valid bytes.
  if (crc32c(payload) != (*cached.payloadCrcs)[e.entryIndex]) {
    crcRecheckFailures_.add();
    throw std::runtime_error("BackupStore: payload CRC mismatch for " +
                             fpToHex(fp));
  }
  return ByteVec(payload.begin(), payload.end());
}

ByteVec ContainerBackupStore::serveChunk(Fp fp, ChunkEntry e) {
  for (int attempt = 1;; ++attempt) {
    try {
      return extractPayload(fetchContainer(e.containerId), fp, e);
    } catch (const std::exception&) {
      // A concurrent GC may have compacted the container between the index
      // lookup and the container fetch (file deleted, chunk relocated).
      // Re-resolve the fingerprint against the current index and retry;
      // real corruption resolves to the same placement and rethrows.
      if (attempt >= kReadRetryAttempts) throw;
      readCache_.invalidate(e.containerId);
      ChunkEntry fresh;
      {
        std::lock_guard lock(mu_);
        const auto openIt = openChunks_.find(fp);
        if (openIt != openChunks_.end()) return openIt->second.bytes;
        const auto value = index_->get(chunkKey(fp));
        if (!value)
          throw std::runtime_error("BackupStore: chunk not found: " +
                                   fpToHex(fp));
        fresh = decodeChunkEntry(*value);
      }
      if (fresh.containerId == e.containerId &&
          fresh.entryIndex == e.entryIndex)
        throw;
      e = fresh;
      readRetries_.add();
    }
  }
}

ByteVec ContainerBackupStore::getChunk(Fp cipherFp) {
  chunkReads_.add();
  ChunkEntry e;
  {
    std::lock_guard lock(mu_);
    const auto openIt = openChunks_.find(cipherFp);
    if (openIt != openChunks_.end()) return openIt->second.bytes;
    const auto value = index_->get(chunkKey(cipherFp));
    if (!value)
      throw std::runtime_error("BackupStore: chunk not found: " +
                               fpToHex(cipherFp));
    e = decodeChunkEntry(*value);
  }
  return serveChunk(cipherFp, e);
}

std::vector<ByteVec> ContainerBackupStore::getChunks(
    std::span<const Fp> cipherFps) {
  batchReads_.add();
  chunkReads_.add(cipherFps.size());
  std::vector<ByteVec> out(cipherFps.size());

  // Phase 1 (index, under the lock): resolve every fingerprint to its
  // placement; open-container chunks are copied out directly.
  struct Need {
    size_t at = 0;  // position in the request / output
    Fp fp = 0;
    ChunkEntry entry;
  };
  std::vector<Need> needs;
  needs.reserve(cipherFps.size());
  {
    std::lock_guard lock(mu_);
    for (size_t i = 0; i < cipherFps.size(); ++i) {
      const auto openIt = openChunks_.find(cipherFps[i]);
      if (openIt != openChunks_.end()) {
        out[i] = openIt->second.bytes;
        continue;
      }
      const auto value = index_->get(chunkKey(cipherFps[i]));
      if (!value)
        throw std::runtime_error("BackupStore: chunk not found: " +
                                 fpToHex(cipherFps[i]));
      needs.push_back({i, cipherFps[i], decodeChunkEntry(*value)});
    }
  }

  // Phase 2 (containers, no lock): serve container by container, so one
  // fetch covers every chunk the batch takes from it. Containers are
  // visited in first-appearance order — not ascending id — so a bounded
  // read cache sees the same front-to-back locality the request had, and
  // the stable sort keeps request order within a container.
  std::unordered_map<uint32_t, size_t> groupRank;
  for (const Need& need : needs)
    groupRank.emplace(need.entry.containerId, groupRank.size());
  std::stable_sort(needs.begin(), needs.end(),
                   [&groupRank](const Need& a, const Need& b) {
                     return groupRank.at(a.entry.containerId) <
                            groupRank.at(b.entry.containerId);
                   });
  for (size_t i = 0; i < needs.size();) {
    size_t j = i;
    const uint32_t id = needs[i].entry.containerId;
    while (j < needs.size() && needs[j].entry.containerId == id) ++j;
    try {
      const BlockCache::Entry cached = fetchContainer(id);
      for (size_t k = i; k < j; ++k)
        out[needs[k].at] = extractPayload(cached, needs[k].fp, needs[k].entry);
    } catch (const std::exception&) {
      // GC race or corruption: fall back to per-chunk serving, which
      // re-resolves each fingerprint and retries before giving up. A chunk
      // whose retry still fails (genuine corruption) throws out of this
      // loop immediately — the rest of the group is not re-attempted.
      for (size_t k = i; k < j; ++k)
        out[needs[k].at] = serveChunk(needs[k].fp, needs[k].entry);
    }
    i = j;
  }
  return out;
}

std::vector<std::optional<ChunkPlacement>> ContainerBackupStore::chunkLocator(
    std::span<const Fp> cipherFps) const {
  std::vector<std::optional<ChunkPlacement>> out(cipherFps.size());
  std::lock_guard lock(mu_);
  for (size_t i = 0; i < cipherFps.size(); ++i) {
    const auto value = index_->get(chunkKey(cipherFps[i]));
    if (!value) continue;  // absent, or still in the open container
    const ChunkEntry e = decodeChunkEntry(*value);
    out[i] = ChunkPlacement{e.containerId, e.entryIndex, e.size};
  }
  return out;
}

BackupStoreStats ContainerBackupStore::stats() const {
  BackupStoreStats s;
  s.logicalPuts = putChunks_.value();
  s.logicalBytes = putBytes_.value();
  s.uniqueChunks = static_cast<uint64_t>(uniqueChunks_.value());
  s.storedBytes = static_cast<uint64_t>(storedBytes_.value());
  return s;
}

StoreReadStats ContainerBackupStore::readStats() const {
  StoreReadStats s;
  s.chunkReads = chunkReads_.value();
  s.batchReads = batchReads_.value();
  s.containerLoads = containerLoads_.value();
  s.cacheHits = readCacheHits_.value();
  s.readRetries = readRetries_.value();
  s.coldReads = coldReads_.value();
  s.promotions = promotions_.value();
  return s;
}

size_t ContainerBackupStore::containerCount() const {
  std::lock_guard lock(mu_);
  return liveContainerIds_.size();
}

void ContainerBackupStore::putBlob(const std::string& name, ByteView bytes) {
  std::lock_guard lock(mu_);
  index_->put(blobKey(name), bytes);
}

std::optional<ByteVec> ContainerBackupStore::getBlob(const std::string& name) {
  std::lock_guard lock(mu_);
  return index_->get(blobKey(name));
}

bool ContainerBackupStore::eraseBlob(const std::string& name) {
  std::lock_guard lock(mu_);
  return index_->erase(blobKey(name));
}

std::vector<std::string> ContainerBackupStore::listNamesLocked(
    char prefix) const {
  std::vector<std::string> names;
  index_->forEach([&names, prefix](ByteView key, ByteView) {
    if (!key.empty() && key[0] == static_cast<uint8_t>(prefix)) {
      names.emplace_back(reinterpret_cast<const char*>(key.data()) + 1,
                         key.size() - 1);
    }
  });
  return names;
}

std::vector<std::string> ContainerBackupStore::listBlobs() {
  std::lock_guard lock(mu_);
  return listNamesLocked(kBlobKeyPrefix);
}

void ContainerBackupStore::adjustRefsLocked(Fp fp, int64_t delta) {
  const auto value = index_->get(chunkKey(fp));
  if (!value) {
    // Dropping a reference to a chunk that no longer exists (e.g. lost to a
    // corrupt container and already reported by recovery) is a no-op;
    // adding one is a caller error.
    if (delta <= 0) return;
    throw std::runtime_error("BackupStore: reference to unknown chunk " +
                             fpToHex(fp));
  }
  ChunkEntry e = decodeChunkEntry(*value);
  const int64_t refs = static_cast<int64_t>(e.refs) + delta;
  // Clamp defensively: an underflow means a corrupt manifest, and verify()
  // reports the accounting mismatch rather than deletion failing halfway.
  e.refs = refs < 0 ? 0 : static_cast<uint32_t>(refs);
  index_->put(chunkKey(fp), encodeChunkEntry(e));
}

void ContainerBackupStore::recordBackup(const std::string& name,
                                        std::span<const Fp> chunkRefs) {
  const Lsn commitLsn = stageRecordBackup(name, chunkRefs);
  // Durable commit, outside the metadata lock: when recordBackup returns,
  // the manifest survives power loss. Concurrent committers block here
  // together and one group fdatasync covers all of them (the group-commit
  // WAL's whole point) instead of serializing an fsync each under mu_.
  if (logKv_ != nullptr) logKv_->sync(commitLsn);
}

void ContainerBackupStore::recordBackupDeferred(const std::string& name,
                                                std::span<const Fp> chunkRefs) {
  // Same staging, durability deferred to the caller's syncMetadataAsync()/
  // flush(): the pipelined form the server's commit path rides.
  stageRecordBackup(name, chunkRefs);
}

void ContainerBackupStore::syncMetadataAsync(
    std::function<void(bool ok)> done) {
  if (logKv_ == nullptr) {
    done(true);  // volatile backend: nothing to make durable
    return;
  }
  Lsn lsn = 0;
  {
    std::lock_guard lock(mu_);
    lsn = logKv_->appendedLsn();
  }
  logKv_->syncAsync(lsn, std::move(done));
}

uint64_t ContainerBackupStore::stageRecordBackup(
    const std::string& name, std::span<const Fp> chunkRefs) {
  Lsn commitLsn = 0;
  {
    std::lock_guard lock(mu_);
    sealOpenContainerLocked();
    std::unordered_map<Fp, int64_t, FpHash> deltas;
    for (const Fp fp : chunkRefs) ++deltas[fp];
    // Validate every reference before mutating anything, so a bad manifest
    // cannot leave refcounts half-applied.
    for (const auto& [fp, n] : deltas) {
      if (!index_->contains(chunkKey(fp)))
        throw std::runtime_error("recordBackup: chunk not stored: " +
                                 fpToHex(fp));
    }
    // Re-recording a name replaces its references. The old manifest is never
    // erased first: refcounts move by delta and the manifest key is swapped
    // in one put (atomic at the log-record level), so a crash at any point
    // leaves either the old or the new manifest — never none. Refcount drift
    // from a crash mid-delta is reconciled against the manifests on the next
    // open.
    for (const Fp fp : backupRefsLocked(name).value_or(std::vector<Fp>{}))
      --deltas[fp];
    for (const auto& [fp, delta] : deltas)
      if (delta != 0) adjustRefsLocked(fp, delta);
    index_->put(manifestKey(name), serializeManifest(chunkRefs));
    registry_.counter("store.backups_recorded").add();
    if (logKv_ != nullptr) commitLsn = logKv_->appendedLsn();
  }
  return commitLsn;
}

std::optional<std::vector<Fp>> ContainerBackupStore::backupRefsLocked(
    const std::string& name) {
  const auto blob = index_->get(manifestKey(name));
  if (!blob) return std::nullopt;
  return parseManifest(*blob);
}

std::optional<std::vector<Fp>> ContainerBackupStore::backupRefs(
    const std::string& name) {
  std::lock_guard lock(mu_);
  return backupRefsLocked(name);
}

bool ContainerBackupStore::releaseBackup(const std::string& name) {
  Lsn commitLsn = 0;
  {
    std::lock_guard lock(mu_);
    const auto blob = index_->get(manifestKey(name));
    if (!blob) return false;
    std::unordered_map<Fp, uint32_t, FpHash> counts;
    for (const Fp fp : parseManifest(*blob)) ++counts[fp];
    for (const auto& [fp, n] : counts)
      adjustRefsLocked(fp, -static_cast<int64_t>(n));
    index_->erase(manifestKey(name));
    registry_.counter("store.backups_released").add();
    if (logKv_ != nullptr) commitLsn = logKv_->appendedLsn();
  }
  // Durable delete, group-committed outside the lock (see recordBackup).
  if (logKv_ != nullptr) logKv_->sync(commitLsn);
  return true;
}

std::vector<std::string> ContainerBackupStore::listBackups() {
  std::lock_guard lock(mu_);
  return listNamesLocked(kManifestKeyPrefix);
}

std::unordered_map<uint32_t,
                   std::vector<std::pair<Fp, ContainerBackupStore::ChunkEntry>>>
ContainerBackupStore::chunkEntriesByContainerLocked() {
  std::unordered_map<uint32_t, std::vector<std::pair<Fp, ChunkEntry>>> result;
  index_->forEach([&result](ByteView key, ByteView value) {
    if (key.empty() || key[0] != static_cast<uint8_t>(kChunkKeyPrefix)) return;
    const Fp fp = getU64(key, 1);
    const ChunkEntry e = decodeChunkEntry(value);
    result[e.containerId].emplace_back(fp, e);
  });
  return result;
}

void ContainerBackupStore::flushIndexLocked() {
  if (logKv_ != nullptr) logKv_->flush();
}

GcStats ContainerBackupStore::collectGarbage() {
  // GC invariants:
  //  (1) a chunk is reclaimed only when its reference count is zero — no
  //      recorded backup manifest references it;
  //  (2) relocated live chunks are sealed and indexed (phase 2) before any
  //      old container is deleted (phase 3), so a crash at any point leaves
  //      every live chunk reachable — at worst duplicated in a container
  //      that recovery treats as orphaned and removes.
  //
  // The whole pass holds the metadata lock, so a concurrent batched read
  // observes either the pre-GC index (old containers still on disk until
  // phase 3; a vanished file triggers its re-resolve + retry path) or the
  // fully compacted one — never a half-applied relocation.
  GcStats gc;
  obs::ObsSpan span(&gcUs_, "store.gc", "store");
  std::lock_guard lock(mu_);
  sealOpenContainerLocked();
  auto byContainer = chunkEntriesByContainerLocked();

  // Phase 1: copy live chunks out of every container that holds dead ones.
  std::vector<uint32_t> doomed;
  for (auto& [id, entries] : byContainer) {
    bool anyDead = false;
    for (const auto& [fp, e] : entries) anyDead |= e.refs == 0;
    if (!anyDead) continue;
    const auto container = loadContainerLocked(id);
    for (const auto& [fp, e] : entries) {
      if (e.refs == 0) continue;
      if (e.entryIndex >= container->entries.size() ||
          container->entries[e.entryIndex].fp != fp)
        throw std::runtime_error("gc: container/index mismatch for " +
                                 fpToHex(fp));
      const ContainerEntry& ce = container->entries[e.entryIndex];
      if (ce.dataOffset + ce.size > container->data.size())
        throw std::runtime_error("gc: chunk payload out of range for " +
                                 fpToHex(fp));
      stageChunkLocked(fp,
                       ByteView(container->data).subspan(ce.dataOffset,
                                                         ce.size),
                       e.refs);
      ++gc.chunksRelocated;
    }
    doomed.push_back(id);
  }

  // Phase 2: persist the relocations before anything is deleted.
  sealOpenContainerLocked();
  flushIndexLocked();

  // Phase 3: drop dead index entries and reclaim the doomed containers.
  for (const uint32_t id : doomed) {
    for (const auto& [fp, e] : byContainer[id]) {
      if (e.refs != 0) continue;
      index_->erase(chunkKey(fp));
      uniqueChunks_.sub(1);
      storedBytes_.sub(e.size);
      ++gc.chunksReclaimed;
      gc.bytesReclaimed += e.size;
    }
    dropContainerLocked(id);
    ++gc.containersCompacted;
  }

  // Phase 4 (optional): demote cold containers until the hot tier's
  // physical bytes drop to the configured target. Oldest-unread containers
  // go first (admission order breaks ties); the keepHotRecent newest ids
  // stay hot so an incremental workload's tail does not bounce straight
  // back. Runs after compaction so doomed containers are never demoted.
  if (options_.coldTier.demoteOnGc && cold_ != nullptr) {
    std::unordered_map<uint32_t, uint64_t> readGen;
    {
      std::lock_guard tierLock(tierMu_);
      readGen = lastReadGen_;
    }
    std::vector<uint32_t> hot;
    uint64_t hotPhysical = 0;
    for (const uint32_t id : liveContainerIds_) {
      if (coldContainerIds_.contains(id)) continue;
      hot.push_back(id);
      const auto it = physicalBytes_.find(id);
      if (it != physicalBytes_.end()) hotPhysical += it->second;
    }
    std::sort(hot.begin(), hot.end());
    const size_t keep =
        std::min<size_t>(hot.size(), options_.coldTier.keepHotRecent);
    hot.resize(hot.size() - keep);  // newest ids are never demoted
    std::stable_sort(hot.begin(), hot.end(),
                     [&readGen](uint32_t a, uint32_t b) {
                       const auto ga = readGen.find(a);
                       const auto gb = readGen.find(b);
                       const uint64_t va =
                           ga == readGen.end() ? 0 : ga->second;
                       const uint64_t vb =
                           gb == readGen.end() ? 0 : gb->second;
                       return va != vb ? va < vb : a < b;
                     });
    for (const uint32_t id : hot) {
      if (hotPhysical <= options_.coldTier.hotBytes) break;
      const auto it = physicalBytes_.find(id);
      const uint64_t physical = it == physicalBytes_.end() ? 0 : it->second;
      demoteContainerLocked(id);
      hotPhysical -= physical;
      ++gc.containersDemoted;
    }
  }

  // Phase 5: checkpoint the index. The checkpoint snapshots only live
  // records (reclaiming the dead ones GC just created), makes everything
  // durable, and rotates the WAL so the next open replays an empty tail.
  if (logKv_ != nullptr) logKv_->checkpoint();
  registry_.counter("store.gc_runs").add();
  registry_.counter("store.gc_relocated_chunks").add(gc.chunksRelocated);
  registry_.counter("store.gc_reclaimed_chunks").add(gc.chunksReclaimed);
  registry_.counter("store.gc_reclaimed_bytes").add(gc.bytesReclaimed);
  registry_.counter("store.gc_compacted_containers")
      .add(gc.containersCompacted);
  return gc;
}

StoreCheckReport ContainerBackupStore::verify() {
  StoreCheckReport report;
  std::lock_guard lock(mu_);
  sealOpenContainerLocked();
  std::unordered_map<uint32_t, std::vector<std::pair<Fp, ChunkEntry>>>
      byContainer;
  try {
    byContainer = chunkEntriesByContainerLocked();
  } catch (const std::exception& e) {
    report.errors.emplace_back(std::string("index: ") + e.what());
    return report;
  }

  // Manifest accounting: expected refcount per fingerprint.
  std::unordered_map<Fp, uint64_t, FpHash> manifestRefs;
  for (const std::string& name : listNamesLocked(kManifestKeyPrefix)) {
    const auto blob = index_->get(manifestKey(name));
    if (!blob) continue;  // racing deletion; nothing to check
    try {
      for (const Fp fp : parseManifest(*blob)) ++manifestRefs[fp];
      ++report.backupsChecked;
    } catch (const std::exception& e) {
      report.errors.emplace_back("backup '" + name + "': " + e.what());
    }
  }

  // Every index entry must resolve to a matching container entry.
  std::unordered_map<Fp, uint32_t, FpHash> indexedRefs;
  for (const auto& [id, entries] : byContainer) {
    std::shared_ptr<const Container> container;
    try {
      container = loadContainerLocked(id);
      ++report.containersChecked;
    } catch (const std::exception& e) {
      report.errors.emplace_back("container " + std::to_string(id) + ": " +
                                 e.what());
    }
    for (const auto& [fp, e] : entries) {
      ++report.chunksChecked;
      indexedRefs[fp] = e.refs;
      if (!container) continue;
      if (e.entryIndex >= container->entries.size()) {
        report.errors.emplace_back("chunk " + fpToHex(fp) +
                                   ": entry index out of range");
        continue;
      }
      const ContainerEntry& ce = container->entries[e.entryIndex];
      if (ce.fp != fp) {
        report.errors.emplace_back("chunk " + fpToHex(fp) +
                                   ": fingerprint mismatch in container");
      } else if (ce.size != e.size) {
        report.errors.emplace_back("chunk " + fpToHex(fp) +
                                   ": size mismatch in container");
      } else if (ce.dataOffset + ce.size > container->data.size()) {
        report.errors.emplace_back("chunk " + fpToHex(fp) +
                                   ": payload out of range");
      }
    }
  }

  // Reference counts must equal the manifest occurrence sums.
  for (const auto& [fp, n] : manifestRefs) {
    if (!indexedRefs.contains(fp))
      report.errors.emplace_back("manifest references missing chunk " +
                                 fpToHex(fp));
  }
  for (const auto& [fp, refs] : indexedRefs) {
    const auto it = manifestRefs.find(fp);
    const uint64_t expected = it == manifestRefs.end() ? 0 : it->second;
    if (refs != expected)
      report.errors.emplace_back(
          "refcount mismatch for " + fpToHex(fp) + ": index says " +
          std::to_string(refs) + ", manifests say " + std::to_string(expected));
  }

  // File mode: every container file on disk — either tier — must be
  // referenced.
  if (!dir_.empty()) {
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/containers")) {
      const auto id = containerIdFromPath(entry.path());
      if (!id) continue;
      if (!byContainer.contains(*id))
        report.errors.emplace_back("orphan container file: " +
                                   entry.path().string());
    }
    if (cold_) {
      for (const std::string& key : cold_->list()) {
        const auto id = containerIdFromPath(std::filesystem::path(key));
        if (!id) continue;
        if (!byContainer.contains(*id))
          report.errors.emplace_back("orphan cold container object: " + key);
      }
    }
  }
  return report;
}

StoreRecoveryStats ContainerBackupStore::recoverPersistentState() {
  FDD_CHECK_MSG(!dir_.empty(), "recovery only applies to persistent stores");
  StoreRecoveryStats rs;
  std::lock_guard lock(mu_);
  // The LogKv constructor already replayed the index log and truncated any
  // torn tail; cross-check the container directory against that index.
  const auto byContainer = chunkEntriesByContainerLocked();
  nextContainerId_ = 0;
  for (const auto& [id, entries] : byContainer)
    nextContainerId_ = std::max(nextContainerId_, id + 1);

  std::unordered_set<uint32_t> onHot;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/containers")) {
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path());  // torn atomic write
      continue;
    }
    const auto id = containerIdFromPath(entry.path());
    if (!id) continue;
    onHot.insert(*id);
    nextContainerId_ = std::max(nextContainerId_, *id + 1);
  }
  // Tier assignment is never persisted: discover the cold tier's containers
  // by listing it (the LocalObjectStore constructor already swept its torn
  // .tmp puts). Quarantined *.corrupt objects fail the id parse and are
  // left alone.
  std::unordered_set<uint32_t> onCold;
  if (cold_) {
    for (const std::string& key : cold_->list()) {
      const auto id = containerIdFromPath(std::filesystem::path(key));
      if (!id) continue;
      onCold.insert(*id);
      nextContainerId_ = std::max(nextContainerId_, *id + 1);
    }
  }

  std::unordered_set<uint32_t> onDisk = onHot;
  onDisk.insert(onCold.begin(), onCold.end());
  for (const uint32_t id : onDisk) {
    const bool hot = onHot.contains(id);
    const bool coldCopy = onCold.contains(id);
    if (!byContainer.contains(id)) {
      // No index entry references it: a crash landed between the container
      // write and its index puts, or mid-GC after relocation.
      if (hot) std::filesystem::remove(containerPath(id));
      if (coldCopy) cold_->remove(coldKey(id));
      ++rs.orphanContainersRemoved;
      continue;
    }
    // Prefer the hot copy. Both tiers holding one (a crash between the two
    // halves of a demotion or promotion) means the copies are identical —
    // both transitions complete the new copy before removing the old — so
    // keeping hot and dropping cold is always safe. Validation parses the
    // full frame (CRC + structure + codec byte), so an unreadable codec or
    // a corrupt compressed stream quarantines exactly like torn bytes.
    // Valid containers are deliberately NOT admitted to the block cache: a
    // freshly opened store starts with a cold cache, so read-count
    // accounting and cold-cache benchmarks measure the read path, not
    // recovery's validation pass.
    bool valid = false;
    if (hot) {
      uint64_t physical = 0;
      try {
        const ByteVec frame = readFile(containerPath(id));
        physical = frame.size();
        valid = parseContainer(frame).id == id;
      } catch (const std::exception&) {
      }
      if (valid) {
        physicalBytes_[id] = physical;
        hotContainers_.add(1);
        hotBytes_.add(static_cast<int64_t>(physical));
        if (coldCopy) cold_->remove(coldKey(id));  // stale duplicate
      } else {
        ++rs.corruptContainers;
        // Keep the bytes for forensics, but out of the recovery path.
        std::filesystem::rename(containerPath(id),
                                containerPath(id) + ".corrupt");
      }
    }
    if (!valid && coldCopy) {
      uint64_t physical = 0;
      try {
        const ByteVec frame = cold_->get(coldKey(id));
        physical = frame.size();
        valid = parseContainer(frame).id == id;
      } catch (const std::exception&) {
      }
      if (valid) {
        coldContainerIds_.insert(id);
        physicalBytes_[id] = physical;
        coldContainers_.add(1);
        coldBytes_.add(static_cast<int64_t>(physical));
      } else {
        ++rs.corruptContainers;
        cold_->rename(coldKey(id), coldKey(id) + ".corrupt");
      }
    }
    if (valid) {
      ++rs.containersValidated;
      liveContainerIds_.insert(id);
    }
  }

  // Drop index entries whose container is missing or failed validation;
  // manifests referencing them now dangle, which verify() reports as the
  // data loss it is.
  for (const auto& [id, entries] : byContainer) {
    if (liveContainerIds_.contains(id)) continue;
    for (const auto& [fp, e] : entries) {
      index_->erase(chunkKey(fp));
      ++rs.entriesDropped;
    }
  }

  // Reconcile reference counts against the manifests, which are the ground
  // truth (each manifest swap is a single atomic log record, while the
  // refcount deltas around it are not). A crash inside recordBackup /
  // releaseBackup / commitBackup leaves drift that this repairs, so GC after
  // reopen can never reclaim a chunk a surviving manifest references.
  std::unordered_map<Fp, uint64_t, FpHash> expectedRefs;
  for (const std::string& name : listNamesLocked(kManifestKeyPrefix)) {
    const auto refs = backupRefsLocked(name);
    if (!refs) continue;
    for (const Fp fp : *refs) ++expectedRefs[fp];
  }
  std::vector<std::pair<Fp, ChunkEntry>> repairs;
  index_->forEach([&](ByteView key, ByteView value) {
    if (key.empty() || key[0] != static_cast<uint8_t>(kChunkKeyPrefix)) return;
    const Fp fp = getU64(key, 1);
    ChunkEntry e = decodeChunkEntry(value);
    const auto it = expectedRefs.find(fp);
    const uint64_t expected = it == expectedRefs.end() ? 0 : it->second;
    if (e.refs != expected) {
      e.refs = static_cast<uint32_t>(expected);
      repairs.emplace_back(fp, e);
    }
  });
  for (const auto& [fp, e] : repairs)
    index_->put(chunkKey(fp), encodeChunkEntry(e));
  rs.refcountsRepaired = repairs.size();

  // Rebuild stats from the surviving index. The registry is fresh for this
  // instance (reset-on-reopen), so the gauges start at zero here.
  index_->forEach([this](ByteView key, ByteView value) {
    if (!key.empty() && key[0] == static_cast<uint8_t>(kChunkKeyPrefix)) {
      uniqueChunks_.add(1);
      storedBytes_.add(decodeChunkEntry(value).size);
    }
  });
  if (rs.entriesDropped > 0 || rs.orphanContainersRemoved > 0 ||
      rs.refcountsRepaired > 0)
    flushIndexLocked();
  return rs;
}

void ContainerBackupStore::flush() {
  std::lock_guard lock(mu_);
  sealOpenContainerLocked();
  flushIndexLocked();
}

namespace {

StoreOptions memStoreOptions(uint64_t containerBytes) {
  StoreOptions o;
  o.containerBytes = containerBytes;
  o.blockCacheBytes = 0;  // resident containers ARE the memory backend's cache
  return o;
}

}  // namespace

MemBackupStore::MemBackupStore(uint64_t containerBytes)
    : ContainerBackupStore(std::make_unique<MemKv>(), "",
                           memStoreOptions(containerBytes)) {}

}  // namespace freqdedup
