// End-to-end encrypted-deduplication backup pipeline over real bytes:
// chunking -> (optional scrambling) -> MLE or MinHash encryption -> chunk
// store, producing file/key recipes; plus the inverse restore path.
//
// This is the "client" of Figure 2 in the paper. The trace-level simulation
// used for the figure reproductions lives in src/core; this class is the
// real-bytes counterpart exercised by the content-pipeline tests, the
// synthetic dataset, and the backup_system example.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chunking/chunker.h"
#include "chunking/segmenter.h"
#include "common/rng.h"
#include "crypto/key_manager.h"
#include "crypto/minhash_encryption.h"
#include "crypto/mle.h"
#include "storage/backup_store.h"
#include "storage/recipe.h"

namespace freqdedup {

class ThreadPool;

enum class EncryptionScheme {
  kMle,              // per-chunk server-aided MLE (deterministic)
  kMinHash,          // segment-keyed MinHash encryption (Algorithm 4)
  kMinHashScrambled  // MinHash + per-segment scrambling (Algorithms 4+5)
};

struct BackupOptions {
  EncryptionScheme scheme = EncryptionScheme::kMle;
  SegmentParams segmentParams;
  uint64_t scrambleSeed = 1;
  /// Worker threads for the per-chunk key-derivation + encryption stage.
  /// 1 (the default) keeps the fully serial path. Any value produces
  /// bit-identical recipes and store contents: chunks are encrypted in
  /// parallel but stored in the same order as the serial path.
  uint32_t parallelism = 1;
};

struct BackupOutcome {
  FileRecipe fileRecipe;
  KeyRecipe keyRecipe;
  size_t chunkCount = 0;
  size_t newChunks = 0;
  size_t duplicateChunks = 0;
};

class BackupManager {
 public:
  /// All referenced collaborators must outlive the manager.
  BackupManager(BackupStore& store, const KeyManager& keyManager,
                const Chunker& chunker, BackupOptions options = {});
  ~BackupManager();

  /// Backs up one logical object (file content) under `name`.
  BackupOutcome backup(const std::string& name, ByteView content);

  /// Restores content from recipes, verifying every chunk end-to-end: the
  /// fetched ciphertext must match the recipe's ciphertext fingerprint and
  /// the decrypted plaintext must match its plaintext fingerprint. Throws
  /// std::runtime_error on any mismatch.
  ByteVec restore(const FileRecipe& fileRecipe, const KeyRecipe& keyRecipe);

  /// Commits a completed backup: seals both recipes under the user key,
  /// stores them as one blob, and records the backup's chunk references in
  /// the store so deletion and garbage collection can account for them.
  ///
  /// Crash-safe also when re-committing an existing name: the references are
  /// first widened to the union of old and new (one atomic manifest swap),
  /// then the recipe blob is swapped (one atomic put), then the references
  /// shrink to the new set — so at every instant the stored blob's chunks
  /// are covered by the manifest and GC can never reclaim them.
  void commitBackup(const std::string& name, const BackupOutcome& outcome,
                    const AesKey& userKey, Rng& rng);

  /// Deletes a committed backup: releases its chunk references and removes
  /// its sealed recipes. Returns false if no such backup exists. Unreferenced
  /// chunks are reclaimed by the store's next collectGarbage().
  bool deleteBackup(const std::string& name);

  /// Names of all committed backups.
  [[nodiscard]] std::vector<std::string> listBackups();

  /// Loads, unseals and restores a named object; throws if absent.
  ByteVec restoreByName(const std::string& name, const AesKey& userKey);

  /// Blob name commitBackup uses for a backup's sealed recipe pair.
  static std::string recipeBlobName(const std::string& name);

 private:
  BackupOutcome backupMle(const std::string& name, ByteView content,
                          const std::vector<ChunkSpan>& spans);
  BackupOutcome backupMinHash(const std::string& name, ByteView content,
                              const std::vector<ChunkSpan>& spans,
                              bool scramble);

  BackupStore* store_;
  const KeyManager* keyManager_;
  const Chunker* chunker_;
  BackupOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // encrypt workers; null when serial
};

/// Computes the per-segment scrambled visit order of Algorithm 5: for each
/// chunk a random bit decides whether it is prepended or appended to the
/// scrambled segment. Returns a permutation of [0, records) (indices into the
/// original order).
std::vector<size_t> scrambleOrder(size_t recordCount,
                                  std::span<const Segment> segments, Rng& rng);

}  // namespace freqdedup
