// One-shot convenience facade over the session-based streaming client.
//
// This is the historic API of the Figure-2 client: backup(name, bytes) over
// a complete in-memory buffer. Since PR 4 it is a thin wrapper over
// DedupClient — each call runs one BackupSession / RestoreSession — and is
// kept for callers whose objects already live in memory (tests, benches,
// trace experiments). New code, and anything handling large objects or
// concurrent clients, should use DedupClient directly (client/dedup_client.h):
// sessions stream arbitrarily large objects in bounded memory and many
// sessions can share one store.
//
// EncryptionScheme, BackupOptions and BackupOutcome now live in
// client/backup_session.h; this header re-exports them via its includes.
#pragma once

#include <string>
#include <vector>

#include "chunking/chunker.h"
#include "client/dedup_client.h"
#include "crypto/key_manager.h"
#include "storage/backup_store.h"
#include "storage/recipe.h"

namespace freqdedup {

class BackupManager {
 public:
  /// All referenced collaborators must outlive the manager.
  BackupManager(BackupStore& store, const KeyManager& keyManager,
                const Chunker& chunker, BackupOptions options = {});

  /// Backs up one logical object (file content) under `name`. Runs one
  /// BackupSession over the whole buffer — recipes and store contents are
  /// identical to streaming the same bytes through a session at any append
  /// granularity.
  BackupOutcome backup(const std::string& name, ByteView content);

  /// Restores content from recipes, verifying every chunk end-to-end (see
  /// RestoreSession). Throws std::runtime_error on any mismatch.
  ByteVec restore(const FileRecipe& fileRecipe, const KeyRecipe& keyRecipe);

  /// See DedupClient::commitBackup.
  void commitBackup(const std::string& name, const BackupOutcome& outcome,
                    const AesKey& userKey, Rng& rng);

  /// See DedupClient::deleteBackup.
  bool deleteBackup(const std::string& name);

  /// Names of all committed backups.
  [[nodiscard]] std::vector<std::string> listBackups();

  /// Loads, unseals and restores a named object; throws if absent.
  ByteVec restoreByName(const std::string& name, const AesKey& userKey);

  /// Blob name commitBackup uses for a backup's sealed recipe pair.
  static std::string recipeBlobName(const std::string& name);

  /// The underlying session client (shared collaborators; vends sessions).
  [[nodiscard]] DedupClient& client() { return client_; }

 private:
  DedupClient client_;
};

}  // namespace freqdedup
