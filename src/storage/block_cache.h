// Thread-safe byte-budgeted cache of parsed, immutable containers — the one
// block-cache layer shared by the restore read path, cold-tier promotion and
// fsck --deep (WiredTiger src/block_cache is the architectural exemplar).
//
// It replaces the container-count-bounded read cache: with variable
// container sizes a count bound leaves the real memory footprint unbounded
// per entry, so admission and eviction here account actual payload bytes
// (plus a small per-entry overhead) against a byte budget. An object whose
// charge alone exceeds the budget is never retained (admission reject).
//
// Container ids are never reused (ContainerBackupStore allocates them
// monotonically, and recovery resumes past the on-disk maximum), so a cached
// container can never alias different bytes under the same id; entries are
// invalidated when GC compaction deletes their container purely to release
// memory and to keep the retry path from re-serving a doomed copy.
//
// Every admitted container carries a per-chunk payload CRC table computed at
// admission, so each chunk served from a cache hit is re-checked (CRC here,
// ciphertext fingerprint in the store) before its bytes leave the store —
// in-memory corruption of a cached copy surfaces as an error, never as
// silently wrong bytes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/container.h"

namespace freqdedup {

/// Built-in eviction policies selectable through StoreOptions/CLI flags.
enum class BlockCacheEviction : uint8_t {
  kLru,   // evict the least recently used container (default)
  kFifo,  // evict in admission order, ignoring accesses
};

[[nodiscard]] const char* evictionName(BlockCacheEviction eviction);
[[nodiscard]] std::optional<BlockCacheEviction> evictionFromName(
    std::string_view name);

class BlockCache {
 public:
  /// A parsed container plus the CRC-32C of each chunk payload, computed
  /// once at admission. Both members are shared and immutable, so entries
  /// stay valid for in-flight readers after invalidation or eviction.
  struct Entry {
    std::shared_ptr<const Container> container;
    std::shared_ptr<const std::vector<uint32_t>> payloadCrcs;
  };

  /// Eviction order tracker. The cache owns one policy instance and calls
  /// it with its mutex held; implementations keep whatever order metadata
  /// they need but never the entries themselves. victim() names the next id
  /// to evict among those currently admitted (called only when non-empty).
  class EvictionPolicy {
   public:
    virtual ~EvictionPolicy() = default;
    virtual void onAdmit(uint32_t id) = 0;
    virtual void onAccess(uint32_t id) = 0;
    virtual void onErase(uint32_t id) = 0;
    [[nodiscard]] virtual uint32_t victim() const = 0;
    virtual void clear() = 0;
  };

  static std::unique_ptr<EvictionPolicy> makePolicy(
      BlockCacheEviction eviction);

  /// Point-in-time view of the cache's counters (which live in a
  /// MetricsRegistry as `cache.*`; this struct is the test-facing view).
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admissions = 0;
    uint64_t admissionRejects = 0;  // charge alone exceeds the budget
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
    uint64_t cachedBytes = 0;
    uint64_t peakCachedBytes = 0;
  };

  /// `budgetBytes` bounds the cache in charged bytes: 0 disables caching
  /// (admit still returns usable entries, nothing is retained) and
  /// kUnboundedBlockCacheBytes never evicts. The single-argument form keeps
  /// counters in a private registry; pass the owning store's registry to
  /// surface them as that store's `cache.*` metrics. Counter updates are
  /// wait-free and never taken under the cache mutex. A null policy means
  /// LRU.
  explicit BlockCache(uint64_t budgetBytes);
  BlockCache(uint64_t budgetBytes, obs::MetricsRegistry& registry,
             std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Cached entry for a container id, promoting it per the eviction policy.
  /// `recordStats` = false makes the lookup an internal probe (still
  /// promoting) that leaves the lookup/hit/miss counters untouched — used
  /// by the single-flight loader's re-check so one logical miss is not
  /// counted twice.
  std::optional<Entry> get(uint32_t id, bool recordStats = true);

  /// Builds the entry (computing the payload CRC table) and retains it when
  /// its charge fits the budget, evicting colder entries as needed. Returns
  /// the entry either way.
  Entry admit(uint32_t id, std::shared_ptr<const Container> container);

  /// Drops a container (GC compaction/delete). No-op when absent.
  void invalidate(uint32_t id);

  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] uint64_t budgetBytes() const { return budget_; }
  [[nodiscard]] bool enabled() const { return budget_ > 0; }
  [[nodiscard]] uint64_t cachedBytes() const;
  [[nodiscard]] size_t size() const;

  /// The per-chunk payload CRC table admit() computes; exposed so the
  /// memory backend can build identical entries for resident containers.
  static Entry makeEntry(std::shared_ptr<const Container> container);

  /// Bytes an entry charges against the budget: payload bytes plus a fixed
  /// per-chunk overhead for the entry table and CRC row.
  static uint64_t entryCharge(const Entry& entry);

 private:
  BlockCache(uint64_t budgetBytes, obs::MetricsRegistry* registry,
             std::unique_ptr<EvictionPolicy> policy);

  void evictUntilFitsLocked(uint64_t incomingCharge, uint64_t& evicted,
                            uint64_t& evictedBytes);

  std::unique_ptr<obs::MetricsRegistry> ownedRegistry_;  // standalone ctor
  obs::MetricsRegistry& registry_;
  obs::Counter& lookups_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& admissions_;
  obs::Counter& admissionRejects_;
  obs::Counter& invalidations_;
  obs::Counter& evictions_;
  obs::Gauge& cachedBytesGauge_;
  obs::Gauge& peakCachedBytesGauge_;
  const uint64_t budget_;
  std::unique_ptr<EvictionPolicy> policy_;

  mutable std::mutex mu_;
  std::unordered_map<uint32_t, Entry> entries_;
  uint64_t cachedBytes_ = 0;
  uint64_t peakCachedBytes_ = 0;
};

/// Charge overhead per chunk entry (ContainerEntry + CRC row + map slack).
inline constexpr uint64_t kBlockCachePerChunkOverhead = 32;

}  // namespace freqdedup
