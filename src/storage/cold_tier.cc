#include "storage/cold_tier.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>

namespace freqdedup {

namespace fs = std::filesystem;

LocalObjectStore::LocalObjectStore(std::string dir, ObjectStoreSim sim)
    : dir_(std::move(dir)), sim_(sim) {
  fs::create_directories(dir_);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path());
  }
}

void LocalObjectStore::throttle(uint32_t latencyUs, uint64_t bytes) const {
  uint64_t us = latencyUs;
  if (sim_.bytesPerSecond > 0)
    us += bytes * 1'000'000 / sim_.bytesPerSecond;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void LocalObjectStore::put(const std::string& key, ByteView bytes) {
  throttle(sim_.writeLatencyUs, bytes.size());
  const std::string path = dir_ + "/" + key;
  writeFile(path + ".tmp", bytes);
  fs::rename(path + ".tmp", path);
}

ByteVec LocalObjectStore::get(const std::string& key) {
  ByteVec bytes = readFile(dir_ + "/" + key);
  throttle(sim_.readLatencyUs, bytes.size());
  return bytes;
}

bool LocalObjectStore::exists(const std::string& key) const {
  return fs::exists(dir_ + "/" + key);
}

bool LocalObjectStore::remove(const std::string& key) {
  return fs::remove(dir_ + "/" + key);
}

void LocalObjectStore::rename(const std::string& key,
                              const std::string& newKey) {
  std::error_code ec;
  fs::rename(dir_ + "/" + key, dir_ + "/" + newKey, ec);
  if (ec)
    throw std::runtime_error("object store: rename failed for " + key + ": " +
                             ec.message());
}

std::vector<std::string> LocalObjectStore::list() const {
  std::vector<std::string> keys;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() != ".tmp")
      keys.push_back(entry.path().filename().string());
  }
  return keys;
}

}  // namespace freqdedup
