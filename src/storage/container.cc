#include "storage/container.h"

#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

uint64_t Container::dataBytes() const {
  uint64_t total = 0;
  for (const auto& e : entries) total += e.size;
  return total;
}

namespace {

void putEntryTable(ByteVec& out, const Container& container) {
  putVarint(out, container.entries.size());
  for (const auto& e : container.entries) {
    putU64(out, e.fp);
    putU32(out, e.size);
    putVarint(out, e.dataOffset);
  }
}

void parseEntryTable(ByteView body, size_t& offset, size_t bodySize,
                     Container& container) {
  const auto entryCount = getVarint(body, offset);
  if (!entryCount) throw std::runtime_error("container: truncated header");
  // Validate the count against the remaining input (every entry occupies at
  // least 13 bytes) before allocating, so a corrupt count cannot trigger a
  // huge reserve. Division avoids overflow on adversarial counts.
  if (*entryCount > (bodySize - offset) / 13)
    throw std::runtime_error("container: entry count exceeds input");
  container.entries.reserve(static_cast<size_t>(*entryCount));
  for (uint64_t i = 0; i < *entryCount; ++i) {
    ContainerEntry e;
    if (offset + 12 > bodySize)
      throw std::runtime_error("container: truncated entry");
    e.fp = getU64(body, offset);
    offset += 8;
    e.size = getU32(body, offset);
    offset += 4;
    const auto dataOffset = getVarint(body, offset);
    if (!dataOffset) throw std::runtime_error("container: truncated entry");
    e.dataOffset = *dataOffset;
    container.entries.push_back(e);
  }
}

/// Every entry's payload must lie within a data section of `dataSize`
/// bytes. For the codec frame this runs against the *declared* raw size
/// before decompression, so a crafted size claim is rejected before any
/// output is allocated. Trace-mode containers carry sizes but no bytes
/// (data empty), so the bound is only enforceable when a payload exists.
void checkEntryExtents(const Container& container, uint64_t dataSize) {
  if (dataSize == 0) return;
  for (const ContainerEntry& e : container.entries) {
    if (e.size > dataSize || e.dataOffset > dataSize - e.size)
      throw std::runtime_error("container: entry payload out of range");
  }
}

}  // namespace

ByteVec serializeContainer(const Container& container, ContainerCodec codec) {
  const ContainerCodec eff = effectiveCodec(codec);
  if (eff != ContainerCodec::kNone) {
    if (auto stored = compressBytes(eff, container.data)) {
      ByteVec out;
      putU32(out, kContainerMagicV2);
      putU32(out, container.id);
      out.push_back(static_cast<uint8_t>(eff));
      putEntryTable(out, container);
      putVarint(out, container.data.size());  // raw (decompressed) length
      putVarint(out, stored->size());
      appendBytes(out, *stored);
      putU32(out, crc32c(out));
      return out;
    }
    // Compression would not shrink the payload (or there is none): fall
    // through to the legacy frame, so incompressible containers pay no
    // codec overhead and trace-mode containers stay legacy-readable.
  }
  ByteVec out;
  putU32(out, kContainerMagic);
  putU32(out, container.id);
  putEntryTable(out, container);
  putVarint(out, container.data.size());
  appendBytes(out, container.data);
  putU32(out, crc32c(out));
  return out;
}

Container parseContainer(ByteView bytes) {
  if (bytes.size() < 12)
    throw std::runtime_error("container: input too short");
  const size_t bodySize = bytes.size() - 4;
  if (crc32c(bytes.subspan(0, bodySize)) != getU32(bytes, bodySize))
    throw std::runtime_error("container: checksum mismatch");
  // All structural reads stay within the CRC-covered body.
  const ByteView body = bytes.subspan(0, bodySize);

  size_t offset = 0;
  const uint32_t magic = getU32(body, offset);
  offset += 4;
  if (magic != kContainerMagic && magic != kContainerMagicV2)
    throw std::runtime_error("container: bad magic");
  Container container;
  container.id = getU32(body, offset);
  offset += 4;

  if (magic == kContainerMagic) {
    parseEntryTable(body, offset, bodySize, container);
    const auto dataLen = getVarint(body, offset);
    if (!dataLen || *dataLen > bodySize - offset)
      throw std::runtime_error("container: truncated data");
    container.data.assign(
        body.begin() + static_cast<ptrdiff_t>(offset),
        body.begin() + static_cast<ptrdiff_t>(offset + *dataLen));
    offset += static_cast<size_t>(*dataLen);
    if (offset != bodySize)
      throw std::runtime_error("container: trailing garbage");
    checkEntryExtents(container, container.data.size());
    return container;
  }

  // Codec frame. The codec byte is validated first: a frame declaring a
  // codec this build cannot decode (or no codec at all — the serializer
  // never writes a kNone codec frame) is rejected, which recovery treats
  // like any other corrupt container (quarantine, not data loss).
  if (offset >= bodySize)
    throw std::runtime_error("container: truncated header");
  const uint8_t codecByte = body[offset++];
  if (codecByte == static_cast<uint8_t>(ContainerCodec::kNone) ||
      (codecByte != static_cast<uint8_t>(ContainerCodec::kZstd) &&
       codecByte != static_cast<uint8_t>(ContainerCodec::kDeflate)))
    throw std::runtime_error("container: unknown codec byte");
  const auto codec = static_cast<ContainerCodec>(codecByte);
  if (!codecAvailable(codec))
    throw std::runtime_error("container: codec not supported in this build");
  parseEntryTable(body, offset, bodySize, container);
  const auto rawLen = getVarint(body, offset);
  if (!rawLen) throw std::runtime_error("container: truncated data header");
  // Bound the decompression output *before* allocating anything: the claim
  // must be plausible in absolute terms and consistent with every entry's
  // declared extent.
  if (*rawLen == 0 || *rawLen > kMaxContainerRawBytes)
    throw std::runtime_error("container: raw size claim implausible");
  checkEntryExtents(container, *rawLen);
  const auto storedLen = getVarint(body, offset);
  if (!storedLen || *storedLen > bodySize - offset)
    throw std::runtime_error("container: truncated data");
  if (*storedLen >= *rawLen)
    throw std::runtime_error("container: stored size claim implausible");
  const ByteView stored = body.subspan(offset, static_cast<size_t>(*storedLen));
  offset += static_cast<size_t>(*storedLen);
  if (offset != bodySize)
    throw std::runtime_error("container: trailing garbage");
  container.data = decompressBytes(codec, stored, *rawLen);
  container.storageCodec = codec;
  return container;
}

ContainerBuilder::ContainerBuilder(uint64_t capacityBytes)
    : capacityBytes_(capacityBytes) {
  FDD_CHECK(capacityBytes > 0);
}

size_t ContainerBuilder::add(Fp fp, uint32_t size, ByteView bytes) {
  FDD_CHECK_MSG(bytes.empty() || bytes.size() == size,
                "content size must match declared size");
  ContainerEntry e;
  e.fp = fp;
  e.size = size;
  e.dataOffset = data_.size();
  if (!bytes.empty()) appendBytes(data_, bytes);
  entries_.push_back(e);
  pendingBytes_ += size;
  return entries_.size() - 1;
}

bool ContainerBuilder::wouldOverflow(uint32_t size) const {
  return !entries_.empty() && pendingBytes_ + size > capacityBytes_;
}

Container ContainerBuilder::seal(uint32_t id) {
  FDD_CHECK_MSG(!entries_.empty(), "sealing an empty container");
  Container container;
  container.id = id;
  container.entries = std::move(entries_);
  container.data = std::move(data_);
  entries_.clear();
  data_.clear();
  pendingBytes_ = 0;
  return container;
}

}  // namespace freqdedup
