#include "storage/container.h"

#include <stdexcept>

#include "common/check.h"
#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {
constexpr uint32_t kContainerMagic = 0x46444354;  // "FDCT"
}

uint64_t Container::dataBytes() const {
  uint64_t total = 0;
  for (const auto& e : entries) total += e.size;
  return total;
}

ByteVec serializeContainer(const Container& container) {
  ByteVec out;
  putU32(out, kContainerMagic);
  putU32(out, container.id);
  putVarint(out, container.entries.size());
  for (const auto& e : container.entries) {
    putU64(out, e.fp);
    putU32(out, e.size);
    putVarint(out, e.dataOffset);
  }
  putVarint(out, container.data.size());
  appendBytes(out, container.data);
  putU32(out, crc32c(out));
  return out;
}

Container parseContainer(ByteView bytes) {
  if (bytes.size() < 12)
    throw std::runtime_error("container: input too short");
  const size_t bodySize = bytes.size() - 4;
  if (crc32c(bytes.subspan(0, bodySize)) != getU32(bytes, bodySize))
    throw std::runtime_error("container: checksum mismatch");
  // All structural reads stay within the CRC-covered body.
  const ByteView body = bytes.subspan(0, bodySize);

  size_t offset = 0;
  if (getU32(body, offset) != kContainerMagic)
    throw std::runtime_error("container: bad magic");
  offset += 4;
  Container container;
  container.id = getU32(body, offset);
  offset += 4;
  const auto entryCount = getVarint(body, offset);
  if (!entryCount) throw std::runtime_error("container: truncated header");
  // Validate the count against the remaining input (every entry occupies at
  // least 13 bytes) before allocating, so a corrupt count cannot trigger a
  // huge reserve. Division avoids overflow on adversarial counts.
  if (*entryCount > (bodySize - offset) / 13)
    throw std::runtime_error("container: entry count exceeds input");
  container.entries.reserve(static_cast<size_t>(*entryCount));
  for (uint64_t i = 0; i < *entryCount; ++i) {
    ContainerEntry e;
    if (offset + 12 > bodySize)
      throw std::runtime_error("container: truncated entry");
    e.fp = getU64(body, offset);
    offset += 8;
    e.size = getU32(body, offset);
    offset += 4;
    const auto dataOffset = getVarint(body, offset);
    if (!dataOffset) throw std::runtime_error("container: truncated entry");
    e.dataOffset = *dataOffset;
    container.entries.push_back(e);
  }
  const auto dataLen = getVarint(body, offset);
  if (!dataLen || *dataLen > bodySize - offset)
    throw std::runtime_error("container: truncated data");
  container.data.assign(body.begin() + static_cast<ptrdiff_t>(offset),
                        body.begin() + static_cast<ptrdiff_t>(offset + *dataLen));
  offset += static_cast<size_t>(*dataLen);
  if (offset != bodySize)
    throw std::runtime_error("container: trailing garbage");
  // Every entry's payload must lie within the data section. Trace-mode
  // containers carry sizes but no bytes (data empty), so the bound is only
  // enforceable when a payload is present.
  if (!container.data.empty()) {
    for (const ContainerEntry& e : container.entries) {
      if (e.size > container.data.size() ||
          e.dataOffset > container.data.size() - e.size)
        throw std::runtime_error("container: entry payload out of range");
    }
  }
  return container;
}

ContainerBuilder::ContainerBuilder(uint64_t capacityBytes)
    : capacityBytes_(capacityBytes) {
  FDD_CHECK(capacityBytes > 0);
}

size_t ContainerBuilder::add(Fp fp, uint32_t size, ByteView bytes) {
  FDD_CHECK_MSG(bytes.empty() || bytes.size() == size,
                "content size must match declared size");
  ContainerEntry e;
  e.fp = fp;
  e.size = size;
  e.dataOffset = data_.size();
  if (!bytes.empty()) appendBytes(data_, bytes);
  entries_.push_back(e);
  pendingBytes_ += size;
  return entries_.size() - 1;
}

bool ContainerBuilder::wouldOverflow(uint32_t size) const {
  return !entries_.empty() && pendingBytes_ + size > capacityBytes_;
}

Container ContainerBuilder::seal(uint32_t id) {
  FDD_CHECK_MSG(!entries_.empty(), "sealing an empty container");
  Container container;
  container.id = id;
  container.entries = std::move(entries_);
  container.data = std::move(data_);
  entries_.clear();
  data_.clear();
  pendingBytes_ = 0;
  return container;
}

}  // namespace freqdedup
