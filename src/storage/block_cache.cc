#include "storage/block_cache.h"

#include <utility>

#include "common/check.h"
#include "common/crc32.h"

namespace freqdedup {

namespace {

/// Recency list shared by the built-in policies: LRU moves an accessed id to
/// the front, FIFO leaves admission order untouched. victim() is the back.
class ListPolicy final : public BlockCache::EvictionPolicy {
 public:
  explicit ListPolicy(bool promoteOnAccess) : promote_(promoteOnAccess) {}

  void onAdmit(uint32_t id) override {
    order_.push_front(id);
    where_.emplace(id, order_.begin());
  }
  void onAccess(uint32_t id) override {
    if (!promote_) return;
    const auto it = where_.find(id);
    if (it == where_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }
  void onErase(uint32_t id) override {
    const auto it = where_.find(id);
    if (it == where_.end()) return;
    order_.erase(it->second);
    where_.erase(it);
  }
  [[nodiscard]] uint32_t victim() const override {
    FDD_CHECK_MSG(!order_.empty(), "victim() on an empty cache");
    return order_.back();
  }
  void clear() override {
    order_.clear();
    where_.clear();
  }

 private:
  const bool promote_;
  std::list<uint32_t> order_;  // front = most recent
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> where_;
};

}  // namespace

const char* evictionName(BlockCacheEviction eviction) {
  switch (eviction) {
    case BlockCacheEviction::kLru:
      return "lru";
    case BlockCacheEviction::kFifo:
      return "fifo";
  }
  return "unknown";
}

std::optional<BlockCacheEviction> evictionFromName(std::string_view name) {
  if (name == "lru") return BlockCacheEviction::kLru;
  if (name == "fifo") return BlockCacheEviction::kFifo;
  return std::nullopt;
}

std::unique_ptr<BlockCache::EvictionPolicy> BlockCache::makePolicy(
    BlockCacheEviction eviction) {
  return std::make_unique<ListPolicy>(eviction == BlockCacheEviction::kLru);
}

BlockCache::BlockCache(uint64_t budgetBytes)
    : BlockCache(budgetBytes, nullptr, nullptr) {}

BlockCache::BlockCache(uint64_t budgetBytes, obs::MetricsRegistry& registry,
                       std::unique_ptr<EvictionPolicy> policy)
    : BlockCache(budgetBytes, &registry, std::move(policy)) {}

BlockCache::BlockCache(uint64_t budgetBytes, obs::MetricsRegistry* registry,
                       std::unique_ptr<EvictionPolicy> policy)
    : ownedRegistry_(registry == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      registry_(registry == nullptr ? *ownedRegistry_ : *registry),
      lookups_(registry_.counter("cache.lookups")),
      hits_(registry_.counter("cache.hits")),
      misses_(registry_.counter("cache.misses")),
      admissions_(registry_.counter("cache.admissions")),
      admissionRejects_(registry_.counter("cache.admission_rejects")),
      invalidations_(registry_.counter("cache.invalidations")),
      evictions_(registry_.counter("cache.evictions")),
      cachedBytesGauge_(registry_.gauge("cache.cached_bytes")),
      peakCachedBytesGauge_(registry_.gauge("cache.peak_cached_bytes")),
      budget_(budgetBytes),
      policy_(policy != nullptr ? std::move(policy)
                                : makePolicy(BlockCacheEviction::kLru)) {
  // The budget itself, as a gauge, so one snapshot carries both sides of
  // the cached_bytes <= budget_bytes invariant. An unbounded budget is not
  // representable (and not an invariant worth checking), so it is omitted.
  if (budget_ > 0 && budget_ != UINT64_MAX)
    registry_.gauge("cache.budget_bytes").add(static_cast<int64_t>(budget_));
}

BlockCache::Entry BlockCache::makeEntry(
    std::shared_ptr<const Container> container) {
  auto crcs = std::make_shared<std::vector<uint32_t>>();
  crcs->reserve(container->entries.size());
  const ByteView data(container->data);
  for (const ContainerEntry& e : container->entries)
    crcs->push_back(crc32c(data.subspan(e.dataOffset, e.size)));
  return Entry{std::move(container), std::move(crcs)};
}

uint64_t BlockCache::entryCharge(const Entry& entry) {
  return entry.container->data.size() +
         entry.container->entries.size() * kBlockCachePerChunkOverhead;
}

std::optional<BlockCache::Entry> BlockCache::get(uint32_t id,
                                                 bool recordStats) {
  std::optional<Entry> entry;
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      entry = it->second;
      policy_->onAccess(id);
    }
  }
  // Counters are wait-free registry atomics, updated outside the cache
  // mutex so accounting never serializes concurrent readers.
  if (recordStats) {
    lookups_.add();
    (entry ? hits_ : misses_).add();
  }
  return entry;
}

void BlockCache::evictUntilFitsLocked(uint64_t incomingCharge,
                                      uint64_t& evicted,
                                      uint64_t& evictedBytes) {
  // incomingCharge <= budget_ (larger objects were rejected), so the
  // subtraction cannot underflow; an unbounded budget never enters the loop.
  while (!entries_.empty() && cachedBytes_ > budget_ - incomingCharge) {
    const uint32_t victim = policy_->victim();
    const auto it = entries_.find(victim);
    FDD_CHECK_MSG(it != entries_.end(), "policy victim not in cache");
    const uint64_t charge = entryCharge(it->second);
    cachedBytes_ -= charge;
    evictedBytes += charge;
    entries_.erase(it);
    policy_->onErase(victim);
    ++evicted;
  }
}

BlockCache::Entry BlockCache::admit(
    uint32_t id, std::shared_ptr<const Container> container) {
  // The CRC table is computed before taking the cache's lock: admission
  // cost scales with container size and must not serialize concurrent
  // cache readers. (The caller may still hold its own store lock; see
  // sealOpenContainerLocked for that trade-off.)
  Entry entry = makeEntry(std::move(container));
  if (budget_ == 0) return entry;
  const uint64_t charge = entryCharge(entry);
  if (charge > budget_) {
    // Larger than the whole budget: retaining it would either break the
    // byte bound or evict everything for a single-use object. The caller
    // still gets a fully usable (uncached) entry.
    admissionRejects_.add();
    return entry;
  }
  bool admitted = false;
  uint64_t evicted = 0;
  uint64_t evictedBytes = 0;
  int64_t peakDelta = 0;
  {
    std::lock_guard lock(mu_);
    if (!entries_.contains(id)) {
      evictUntilFitsLocked(charge, evicted, evictedBytes);
      entries_.emplace(id, entry);
      policy_->onAdmit(id);
      cachedBytes_ += charge;
      if (cachedBytes_ > peakCachedBytes_) {
        peakDelta = static_cast<int64_t>(cachedBytes_ - peakCachedBytes_);
        peakCachedBytes_ = cachedBytes_;
      }
      admitted = true;
    } else {
      // Already present (a racing loader admitted first): keep the resident
      // copy, just refresh its recency.
      policy_->onAccess(id);
    }
  }
  if (admitted) {
    admissions_.add();
    // The eviction loop's byte release and this admission's byte charge
    // both land on the gauge here, outside the mutex.
    cachedBytesGauge_.add(static_cast<int64_t>(charge) -
                          static_cast<int64_t>(evictedBytes));
  }
  if (evicted > 0) evictions_.add(evicted);
  if (peakDelta > 0) peakCachedBytesGauge_.add(peakDelta);
  return entry;
}

void BlockCache::invalidate(uint32_t id) {
  bool erased = false;
  int64_t released = 0;
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      released = static_cast<int64_t>(entryCharge(it->second));
      cachedBytes_ -= static_cast<uint64_t>(released);
      entries_.erase(it);
      policy_->onErase(id);
      erased = true;
    }
  }
  if (erased) {
    invalidations_.add();
    cachedBytesGauge_.sub(released);
  }
}

void BlockCache::clear() {
  int64_t released = 0;
  {
    std::lock_guard lock(mu_);
    released = static_cast<int64_t>(cachedBytes_);
    entries_.clear();
    policy_->clear();
    cachedBytes_ = 0;
  }
  cachedBytesGauge_.sub(released);
}

BlockCache::Stats BlockCache::stats() const {
  Stats s;
  s.lookups = lookups_.value();
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.admissions = admissions_.value();
  s.admissionRejects = admissionRejects_.value();
  s.invalidations = invalidations_.value();
  s.evictions = evictions_.value();
  {
    std::lock_guard lock(mu_);
    s.cachedBytes = cachedBytes_;
    s.peakCachedBytes = peakCachedBytes_;
  }
  return s;
}

uint64_t BlockCache::cachedBytes() const {
  std::lock_guard lock(mu_);
  return cachedBytes_;
}

size_t BlockCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace freqdedup
