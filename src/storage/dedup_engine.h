// DDFS-like deduplication engine with metadata-access accounting
// (Section 7.4 of the paper).
//
// Processes a logical stream of (already encrypted) chunk records and decides
// for each whether it is a duplicate, following the paper's four steps:
//   S1  check the in-memory fingerprint cache;
//   S2  on cache miss, consult the Bloom filter — a negative proves the chunk
//       is new: update the filter and buffer the chunk into the open
//       container (flushing a full container updates the on-disk index);
//   S3  on a Bloom positive, look the fingerprint up in the on-disk index
//       (counted as index access); a miss means Bloom false positive — store
//       as in S2;
//   S4  on an index hit, load all fingerprints of the chunk's container into
//       the fingerprint cache (counted as loading access) — chunk locality
//       makes the neighbors likely to be referenced next.
//
// Metadata access is accounted in bytes at 32 B per fingerprint entry:
//   update access  — index writes for newly stored unique chunks (S2/S3),
//   index access   — on-disk index lookups (S3),
//   loading access — container fingerprint loads into the cache (S4).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/bloom_filter.h"
#include "common/fingerprint.h"
#include "common/lru_cache.h"
#include "obs/metrics.h"
#include "storage/container.h"

namespace freqdedup {

struct DedupEngineParams {
  uint64_t containerBytes = kDefaultContainerBytes;
  /// In-memory fingerprint cache budget in bytes (entries = bytes / 32).
  uint64_t cacheBytes = 512ULL * 1024 * 1024;
  /// Expected total fingerprints processed, for Bloom filter sizing.
  uint64_t expectedFingerprints = 1'000'000;
  double bloomFpr = 0.01;
};

struct MetadataAccessStats {
  uint64_t updateBytes = 0;
  uint64_t indexBytes = 0;
  uint64_t loadingBytes = 0;

  [[nodiscard]] uint64_t totalBytes() const {
    return updateBytes + indexBytes + loadingBytes;
  }
  MetadataAccessStats& operator+=(const MetadataAccessStats& o) {
    updateBytes += o.updateBytes;
    indexBytes += o.indexBytes;
    loadingBytes += o.loadingBytes;
    return *this;
  }
  /// Differences saturate at zero: callers diff cumulative counters taken at
  /// two points in time, and a reordered snapshot must not underflow into a
  /// huge unsigned value.
  friend MetadataAccessStats operator-(MetadataAccessStats a,
                                       const MetadataAccessStats& b) {
    const auto sub = [](uint64_t x, uint64_t y) { return x > y ? x - y : 0; };
    a.updateBytes = sub(a.updateBytes, b.updateBytes);
    a.indexBytes = sub(a.indexBytes, b.indexBytes);
    a.loadingBytes = sub(a.loadingBytes, b.loadingBytes);
    return a;
  }

  /// The ingest.metadata_* counters of one engine snapshot, as this struct.
  static MetadataAccessStats fromSnapshot(const obs::MetricsSnapshot& snap);
};

struct DedupEngineStats {
  uint64_t logicalChunks = 0;
  uint64_t logicalBytes = 0;
  uint64_t uniqueChunks = 0;
  uint64_t uniqueBytes = 0;
  uint64_t cacheHits = 0;
  uint64_t bufferHits = 0;
  uint64_t bloomNegatives = 0;
  uint64_t bloomFalsePositives = 0;
  uint64_t indexHits = 0;
  MetadataAccessStats metadata;

  [[nodiscard]] double dedupRatio() const {
    return uniqueBytes == 0 || logicalBytes == 0
               ? 0.0
               : static_cast<double>(logicalBytes) /
                     static_cast<double>(uniqueBytes);
  }

  /// Merges counters from another engine (e.g. a shard of the sharded index).
  DedupEngineStats& operator+=(const DedupEngineStats& o) {
    logicalChunks += o.logicalChunks;
    logicalBytes += o.logicalBytes;
    uniqueChunks += o.uniqueChunks;
    uniqueBytes += o.uniqueBytes;
    cacheHits += o.cacheHits;
    bufferHits += o.bufferHits;
    bloomNegatives += o.bloomNegatives;
    bloomFalsePositives += o.bloomFalsePositives;
    indexHits += o.indexHits;
    metadata += o.metadata;
    return *this;
  }

  /// Interval view of two cumulative stats, saturating at zero per field.
  friend DedupEngineStats operator-(DedupEngineStats a,
                                    const DedupEngineStats& b) {
    const auto sub = [](uint64_t x, uint64_t y) { return x > y ? x - y : 0; };
    a.logicalChunks = sub(a.logicalChunks, b.logicalChunks);
    a.logicalBytes = sub(a.logicalBytes, b.logicalBytes);
    a.uniqueChunks = sub(a.uniqueChunks, b.uniqueChunks);
    a.uniqueBytes = sub(a.uniqueBytes, b.uniqueBytes);
    a.cacheHits = sub(a.cacheHits, b.cacheHits);
    a.bufferHits = sub(a.bufferHits, b.bufferHits);
    a.bloomNegatives = sub(a.bloomNegatives, b.bloomNegatives);
    a.bloomFalsePositives = sub(a.bloomFalsePositives, b.bloomFalsePositives);
    a.indexHits = sub(a.indexHits, b.indexHits);
    a.metadata = a.metadata - b.metadata;
    return a;
  }

  /// The ingest.* counters of one engine snapshot, as this struct — the
  /// inverse of how DedupEngine::stats() views its registry.
  static DedupEngineStats fromSnapshot(const obs::MetricsSnapshot& snap);
};

/// Result of ingesting one chunk.
struct IngestOutcome {
  bool duplicate = false;
  /// Container holding the chunk; for a freshly buffered unique chunk this is
  /// unset until its container flushes.
  std::optional<uint32_t> containerId;
};

class DedupEngine {
 public:
  explicit DedupEngine(const DedupEngineParams& params);

  /// Processes one logical chunk record (trace mode: sizes only, no bytes).
  IngestOutcome ingest(const ChunkRecord& record);

  /// Processes a whole backup stream.
  void ingestBackup(std::span<const ChunkRecord> records);

  /// Flushes the open container buffer (e.g. at end of the run).
  void flushOpenContainer();

  /// Legacy-shaped view over this engine's metrics registry.
  [[nodiscard]] DedupEngineStats stats() const;
  /// Point-in-time snapshot of the engine's ingest.* metrics. Each engine
  /// (each shard of the sharded index) owns its registry, so per-shard
  /// counters merge via MetricsSnapshot::merge with no cross-shard
  /// contention on the ingest hot path.
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const {
    return registry_.snapshot();
  }
  [[nodiscard]] size_t containerCount() const { return containerFps_.size(); }
  [[nodiscard]] size_t indexEntries() const { return index_.size(); }
  [[nodiscard]] const std::vector<Fp>& containerFingerprints(
      uint32_t id) const;

 private:
  /// Per-batch accumulator for the per-chunk counters: ingestBackup tallies
  /// in plain locals and flushes once per span, so the hot loop performs no
  /// atomic operations at all (the counters stay exact — the engine is
  /// externally synchronized, only snapshot reads are concurrent).
  struct IngestTally {
    uint64_t logicalChunks = 0;
    uint64_t logicalBytes = 0;
    uint64_t uniqueChunks = 0;
    uint64_t uniqueBytes = 0;
    uint64_t cacheHits = 0;
    uint64_t bufferHits = 0;
    uint64_t bloomNegatives = 0;
    uint64_t bloomFalsePositives = 0;
    uint64_t indexHits = 0;
    uint64_t indexBytes = 0;
    uint64_t loadingBytes = 0;
  };

  IngestOutcome ingestTallied(const ChunkRecord& record, IngestTally& tally);
  void storeUnique(const ChunkRecord& record, IngestTally& tally);
  void flushTally(const IngestTally& tally);

  DedupEngineParams params_;
  // Per-engine metrics; handles resolved once so ingest() never touches the
  // registry itself.
  mutable obs::MetricsRegistry registry_;
  obs::Counter& logicalChunks_;
  obs::Counter& logicalBytes_;
  obs::Counter& uniqueChunks_;
  obs::Counter& uniqueBytes_;
  obs::Counter& cacheHits_;
  obs::Counter& bufferHits_;
  obs::Counter& bloomNegatives_;
  obs::Counter& bloomFalsePositives_;
  obs::Counter& indexHits_;
  obs::Counter& metadataUpdateBytes_;
  obs::Counter& metadataIndexBytes_;
  obs::Counter& metadataLoadingBytes_;
  BloomFilter bloom_;
  LruCache<Fp, uint32_t, FpHash> cache_;
  std::unordered_map<Fp, uint32_t, FpHash> index_;  // models the on-disk index
  std::vector<std::vector<Fp>> containerFps_;       // fps per sealed container
  // Open container buffer.
  std::vector<ChunkRecord> buffer_;
  std::unordered_set<Fp, FpHash> bufferFps_;
  uint64_t bufferBytes_ = 0;
};

}  // namespace freqdedup
