// Containers: the multi-megabyte on-disk units that deduplicated storage
// systems batch unique chunks into (Section 7.4; Zhu et al., FAST'08;
// Lillibridge et al., FAST'13). Chunks are appended in logical order, which
// is what gives the fingerprint-prefetching of step S4 its hit rate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/fingerprint.h"
#include "storage/codec.h"

namespace freqdedup {

inline constexpr uint64_t kDefaultContainerBytes = 4 * 1024 * 1024;

/// Legacy frame magic ("FDCT"): header, entry table, raw data, trailing CRC.
/// Every container written without compression uses this frame, so old
/// stores parse unchanged and kNone output stays bit-identical to them.
inline constexpr uint32_t kContainerMagic = 0x46444354;

/// Codec frame magic ("FDC2"): like the legacy frame but with a codec byte
/// and a (rawLen, storedLen) pair framing a compressed data section.
inline constexpr uint32_t kContainerMagicV2 = 0x46444332;

/// Upper bound on a frame's declared decompressed data size; claims beyond
/// it are rejected before any allocation happens.
inline constexpr uint64_t kMaxContainerRawBytes = uint64_t{1} << 30;

struct ContainerEntry {
  Fp fp = 0;
  uint32_t size = 0;
  uint64_t dataOffset = 0;  // offset of the chunk within the container data

  friend bool operator==(const ContainerEntry&,
                         const ContainerEntry&) = default;
};

struct Container {
  uint32_t id = 0;
  std::vector<ContainerEntry> entries;
  ByteVec data;  // empty in trace mode (sizes tracked, bytes not stored)
  /// Codec of the frame this container was parsed from (kNone for legacy
  /// frames and freshly built containers); `data` is always raw bytes.
  ContainerCodec storageCodec = ContainerCodec::kNone;

  [[nodiscard]] size_t chunkCount() const { return entries.size(); }
  [[nodiscard]] uint64_t dataBytes() const;
  /// Bytes of fingerprint metadata this container contributes to the index
  /// (32 B per fingerprint, as configured in the paper's prototype).
  [[nodiscard]] uint64_t metadataBytes() const {
    return static_cast<uint64_t>(entries.size()) * kFpMetadataBytes;
  }
};

/// Serializes a container (header, entry table, data, trailing CRC). With a
/// codec (after effectiveCodec mapping) the data section is compressed into
/// a codec frame — unless compression would not shrink it, in which case the
/// output falls back to the bit-identical legacy kNone frame. Containers
/// without payload bytes (trace mode) always use the legacy frame.
ByteVec serializeContainer(const Container& container,
                           ContainerCodec codec = ContainerCodec::kNone);

/// Parses a serialized container (either frame; `storageCodec` records which
/// codec the frame declared); throws std::runtime_error on corruption,
/// unknown codec bytes, or implausible decompressed-size claims — entry
/// extents are validated against the declared raw size before any
/// decompression output is allocated.
Container parseContainer(ByteView bytes);

/// Accumulates chunks until the data payload reaches the capacity, then the
/// caller seals it into a Container.
class ContainerBuilder {
 public:
  explicit ContainerBuilder(uint64_t capacityBytes = kDefaultContainerBytes);

  /// Adds a chunk. In trace mode pass an empty `bytes` (size still counts
  /// toward capacity). Returns the entry index.
  size_t add(Fp fp, uint32_t size, ByteView bytes = {});

  /// True when adding a chunk of `size` would exceed capacity.
  [[nodiscard]] bool wouldOverflow(uint32_t size) const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] size_t chunkCount() const { return entries_.size(); }
  [[nodiscard]] uint64_t pendingBytes() const { return pendingBytes_; }
  [[nodiscard]] uint64_t capacityBytes() const { return capacityBytes_; }

  /// Seals the accumulated chunks into a container with the given id and
  /// resets the builder.
  Container seal(uint32_t id);

 private:
  uint64_t capacityBytes_;
  uint64_t pendingBytes_ = 0;
  std::vector<ContainerEntry> entries_;
  ByteVec data_;
};

}  // namespace freqdedup
