// Cold storage tier behind a minimal object-store interface.
//
// A tiered store keeps its working set in the hot local tier
// (<dir>/containers) and demotes cold container files — whole CRC-framed
// frames, bytes preserved verbatim — into an ObjectStore during
// collectGarbage(). Restore reads that miss the hot tier fetch from cold
// and transparently promote (the store copies the object back into the hot
// tier and deletes the cold copy). The tier assignment is never persisted:
// recovery discovers it by scanning both tiers, so a store reopened with
// different tiering options still finds every container.
//
// LocalObjectStore is the built-in backend: a flat directory of objects
// with optional simulated latency and bandwidth, so benches and tests can
// model a remote object store (S3-style cold tier) without network access.
// Puts are atomic (tmp + rename) and torn tmp files are swept on open.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace freqdedup {

/// Simulated object-store performance envelope. Zero values mean "free".
struct ObjectStoreSim {
  uint32_t readLatencyUs = 0;   // added to every get()
  uint32_t writeLatencyUs = 0;  // added to every put()
  uint64_t bytesPerSecond = 0;  // get/put bandwidth cap; 0 = unlimited
};

/// Minimal blob interface the cold tier is programmed against. Keys are
/// flat names (no directories). Implementations must make put() atomic:
/// a reader never observes a partially written object.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual void put(const std::string& key, ByteView bytes) = 0;
  /// Throws std::runtime_error when the object is absent or unreadable.
  [[nodiscard]] virtual ByteVec get(const std::string& key) = 0;
  [[nodiscard]] virtual bool exists(const std::string& key) const = 0;
  /// False when the object was already absent (idempotent delete).
  virtual bool remove(const std::string& key) = 0;
  /// Renames an object (quarantine path); throws if the source is absent.
  virtual void rename(const std::string& key, const std::string& newKey) = 0;
  [[nodiscard]] virtual std::vector<std::string> list() const = 0;
};

/// Directory-backed ObjectStore with simulated latency/bandwidth.
class LocalObjectStore final : public ObjectStore {
 public:
  /// Creates `dir` if missing and removes stray *.tmp files (torn puts).
  explicit LocalObjectStore(std::string dir, ObjectStoreSim sim = {});

  void put(const std::string& key, ByteView bytes) override;
  [[nodiscard]] ByteVec get(const std::string& key) override;
  [[nodiscard]] bool exists(const std::string& key) const override;
  bool remove(const std::string& key) override;
  void rename(const std::string& key, const std::string& newKey) override;
  [[nodiscard]] std::vector<std::string> list() const override;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  void throttle(uint32_t latencyUs, uint64_t bytes) const;

  std::string dir_;
  ObjectStoreSim sim_;
};

/// Tiering knobs, part of StoreOptions. Reads always consult the cold tier
/// (tier assignment is discovered, not configured); these knobs only shape
/// demotion and the simulated cold-store performance.
struct ColdTierOptions {
  /// Demote during collectGarbage() until the hot tier's physical bytes
  /// drop to hotBytes (oldest-unread containers first).
  bool demoteOnGc = false;
  /// Hot-tier physical-byte target for demotion. 0 demotes everything
  /// demotable (the keepHotRecent newest containers are always kept hot).
  uint64_t hotBytes = 0;
  /// Newest containers never demoted: the most recent backup's tail stays
  /// hot so incremental workloads do not bounce straight back.
  uint32_t keepHotRecent = 1;
  /// Simulated performance of the cold object store.
  ObjectStoreSim sim;
};

}  // namespace freqdedup
