#include "client/dedup_client.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/varint.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

DedupClient::DedupClient(BackupStore& store, const KeyManager& keyManager,
                         const Chunker& chunker, BackupOptions options,
                         RestoreOptions restoreOptions)
    : store_(&store),
      keyManager_(&keyManager),
      chunker_(&chunker),
      options_(options),
      restoreOptions_(restoreOptions) {
  if (options_.parallelism == 0)
    throw std::invalid_argument("BackupOptions: parallelism must be >= 1");
  options_.segmentParams.validate();
  restoreOptions_.validate();
  const uint32_t poolThreads =
      std::max(options_.parallelism, restoreOptions_.parallelism);
  if (poolThreads > 1) pool_ = std::make_unique<ThreadPool>(poolThreads);
}

DedupClient::DedupClient(BackupStore& store, RestoreOptions restoreOptions)
    : store_(&store),
      keyManager_(nullptr),
      chunker_(nullptr),
      restoreOptions_(restoreOptions) {
  restoreOptions_.validate();
  if (restoreOptions_.parallelism > 1)
    pool_ = std::make_unique<ThreadPool>(restoreOptions_.parallelism);
}

DedupClient::~DedupClient() = default;

BackupSession DedupClient::beginBackup(std::string name) {
  FDD_CHECK_MSG(chunker_ != nullptr && keyManager_ != nullptr,
                "beginBackup on a restore-only DedupClient");
  return BackupSession(*this, std::move(name));
}

std::unique_ptr<BackupSession> DedupClient::beginBackupHandle(
    std::string name) {
  FDD_CHECK_MSG(chunker_ != nullptr && keyManager_ != nullptr,
                "beginBackupHandle on a restore-only DedupClient");
  // new instead of make_unique: the constructor is private to friends.
  return std::unique_ptr<BackupSession>(
      new BackupSession(*this, std::move(name)));
}

RestoreSession DedupClient::beginRestore(FileRecipe fileRecipe,
                                         KeyRecipe keyRecipe) {
  return RestoreSession(*this, std::move(fileRecipe), std::move(keyRecipe));
}

namespace {

/// The recipe blob packs both sealed recipes into one value so the pair is
/// swapped by a single (atomic) log record and can never tear: varint
/// lengths prefix each sealed section.
ByteVec packSealedRecipes(ByteView sealedFile, ByteView sealedKeys) {
  ByteVec out;
  putVarint(out, sealedFile.size());
  appendBytes(out, sealedFile);
  putVarint(out, sealedKeys.size());
  appendBytes(out, sealedKeys);
  return out;
}

std::pair<ByteVec, ByteVec> unpackSealedRecipes(ByteView blob) {
  size_t offset = 0;
  const auto fileLen = getVarint(blob, offset);
  if (!fileLen || *fileLen > blob.size() - offset)
    throw std::runtime_error("recipe blob: truncated file section");
  ByteVec sealedFile(blob.begin() + static_cast<ptrdiff_t>(offset),
                     blob.begin() + static_cast<ptrdiff_t>(offset + *fileLen));
  offset += static_cast<size_t>(*fileLen);
  const auto keyLen = getVarint(blob, offset);
  if (!keyLen || *keyLen != blob.size() - offset)
    throw std::runtime_error("recipe blob: truncated key section");
  ByteVec sealedKeys(blob.begin() + static_cast<ptrdiff_t>(offset),
                     blob.end());
  return {std::move(sealedFile), std::move(sealedKeys)};
}

}  // namespace

RestoreSession DedupClient::beginRestore(const std::string& name,
                                         const AesKey& userKey) {
  std::optional<ByteVec> blob;
  {
    std::lock_guard lock(storeMu_);
    blob = store_->getBlob(recipeBlobName(name));
  }
  if (!blob) throw std::runtime_error("beginRestore: no recipes for " + name);
  const auto [sealedFile, sealedKeys] = unpackSealedRecipes(*blob);
  FileRecipe fileRecipe = parseFileRecipe(openWithUserKey(userKey, sealedFile));
  KeyRecipe keyRecipe = parseKeyRecipe(openWithUserKey(userKey, sealedKeys));
  return RestoreSession(*this, std::move(fileRecipe), std::move(keyRecipe));
}

std::string DedupClient::recipeBlobName(const std::string& name) {
  return "recipe:" + name;
}

void DedupClient::commitBackup(const std::string& name,
                               const BackupOutcome& outcome,
                               const AesKey& userKey, Rng& rng) {
  std::vector<Fp> refs;
  refs.reserve(outcome.fileRecipe.entries.size());
  for (const RecipeEntry& e : outcome.fileRecipe.entries)
    refs.push_back(e.cipherFp);

  // The whole three-phase commit holds the store lock so concurrent
  // sessions never observe a half-swapped recipe/manifest pair.
  std::lock_guard lock(storeMu_);

  // Phase 1: widen the manifest to old ∪ new, so chunks of both the current
  // blob and the incoming one stay protected through the swap.
  const auto oldRefs = store_->backupRefs(name);
  if (oldRefs) {
    std::vector<Fp> unionRefs = refs;
    unionRefs.insert(unionRefs.end(), oldRefs->begin(), oldRefs->end());
    store_->recordBackup(name, unionRefs);
  } else {
    store_->recordBackup(name, refs);
  }

  // Phase 2: swap the sealed recipe pair in one atomic blob put.
  store_->putBlob(
      recipeBlobName(name),
      packSealedRecipes(
          sealWithUserKey(userKey, serializeFileRecipe(outcome.fileRecipe),
                          rng),
          sealWithUserKey(userKey, serializeKeyRecipe(outcome.keyRecipe),
                          rng)));

  // Phase 3: shrink the manifest to the new references only.
  if (oldRefs) store_->recordBackup(name, refs);
}

void DedupClient::commitBackupAsync(const std::string& name,
                                    const BackupOutcome& outcome,
                                    const AesKey& userKey, Rng& rng,
                                    std::function<void(bool ok)> durable) {
  std::vector<Fp> refs;
  refs.reserve(outcome.fileRecipe.entries.size());
  for (const RecipeEntry& e : outcome.fileRecipe.entries)
    refs.push_back(e.cipherFp);

  {
    // Same three phases as commitBackup, but staged: the WAL orders the
    // records and durability is a prefix of that order, so deferring every
    // sync to one final group commit preserves the crash invariant (at any
    // durable prefix the stored blob's chunks are covered by the manifest —
    // losing a suffix only ever loses the blob swap or the shrink, both
    // safe over-retention).
    std::lock_guard lock(storeMu_);
    const auto oldRefs = store_->backupRefs(name);
    if (oldRefs) {
      std::vector<Fp> unionRefs = refs;
      unionRefs.insert(unionRefs.end(), oldRefs->begin(), oldRefs->end());
      store_->recordBackupDeferred(name, unionRefs);
    } else {
      store_->recordBackupDeferred(name, refs);
    }
    store_->putBlob(
        recipeBlobName(name),
        packSealedRecipes(
            sealWithUserKey(userKey, serializeFileRecipe(outcome.fileRecipe),
                            rng),
            sealWithUserKey(userKey, serializeKeyRecipe(outcome.keyRecipe),
                            rng)));
    if (oldRefs) store_->recordBackupDeferred(name, refs);
  }
  // One coalesced durability wait for the whole commit, outside the client
  // lock so concurrent committers pipeline into a single group fdatasync.
  store_->syncMetadataAsync(std::move(durable));
}

bool DedupClient::deleteBackup(const std::string& name) {
  // Blob first: a crash in between leaves the manifest (safe over-retention
  // that a re-run or re-commit clears), never recipes whose chunks GC could
  // reclaim underneath them.
  std::lock_guard lock(storeMu_);
  const bool hadBlob = store_->eraseBlob(recipeBlobName(name));
  const bool hadManifest = store_->releaseBackup(name);
  return hadBlob || hadManifest;
}

std::vector<std::string> DedupClient::listBackups() {
  std::lock_guard lock(storeMu_);
  return store_->listBackups();
}

AesKey userKeyFromPassphrase(std::string_view passphrase) {
  const Digest d =
      sha256(toBytes("user-key:" + std::string(passphrase)));
  AesKey key{};
  std::copy(d.bytes.begin(), d.bytes.begin() + kAesKeyBytes, key.begin());
  return key;
}

}  // namespace freqdedup
