// Streaming restore session (one per in-flight object) — a locality-aware
// batched, pipelined read engine.
//
// A restore pass runs three stages:
//  1. a planner walks the file recipe and cuts it into container-locality
//     batches (consecutive entries, bounded bytes, bounded distinct
//     containers — using BackupStore::chunkLocator placement);
//  2. a prefetcher fetches up to RestoreOptions::readAheadBatches batches
//     ahead through BackupStore::getChunks, which reads each container once
//     and serves repeats from the store's container read cache;
//  3. chunks are decrypted and fingerprint-verified (ciphertext fingerprint
//     against the file recipe, decrypted plaintext fingerprint against the
//     recipe's plaintext fingerprint) — in parallel when the client has a
//     worker pool — and emitted to the sink strictly in recipe order.
//
// Output bytes and verification semantics (which checks run, with which
// error messages) are identical to the historic chunk-at-a-time path at
// every parallelism / read-ahead / cache setting. On failure the sink has
// received an in-order strict prefix of the object; unlike the historic
// path, that prefix ends at the preceding batch boundary rather than at
// the failing chunk (batches verify before they emit). Peak chunk-data
// memory is O((readAheadBatches + 1) * batchBytes) on top of the recipes
// the session already holds.
//
// Sessions are vended by DedupClient and are not thread-safe individually,
// but distinct sessions of one client may run concurrently — restore I/O
// deliberately runs outside the client's store mutex (the store's read path
// is internally synchronized), so concurrent restores overlap their I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "storage/recipe.h"

namespace freqdedup {

class DedupClient;

/// Read-path tuning for the sessions a DedupClient vends. Every setting
/// produces byte-identical output; the knobs trade memory for overlap.
struct RestoreOptions {
  /// Worker threads for the decrypt + fingerprint-verify stage. 1 keeps the
  /// fully serial path (no pool needed); any larger value selects the
  /// parallel path, which fans out over the client's worker pool — shared
  /// with the backup encrypt stage and sized to the larger of the two
  /// parallelism settings, so this is a floor on pool width, not a per-stage
  /// cap. Output is byte-identical at every setting.
  uint32_t parallelism = 1;
  /// How many locality batches the prefetcher may fetch beyond the batch
  /// currently being decrypted and emitted. 0 disables read-ahead (fetch,
  /// then decrypt, strictly alternating). Read-ahead needs a worker pool,
  /// i.e. parallelism > 1 on this or the backup side.
  uint32_t readAheadBatches = 2;
  /// Target ciphertext bytes per locality batch — the unit of restore
  /// memory and of store read amplification.
  uint64_t batchBytes = 4 * 1024 * 1024;
  /// A batch is cut early once it spans this many distinct containers, so
  /// one slow batch never fans out across the whole store.
  uint32_t maxBatchContainers = 8;

  /// Throws std::invalid_argument on a zero parallelism, batchBytes or
  /// maxBatchContainers.
  void validate() const;
};

/// Receives the next plaintext bytes of the object, in order. The view is
/// only valid for the duration of the call.
using ByteSink = std::function<void(ByteView)>;

class RestoreSession {
 public:
  RestoreSession(const RestoreSession&) = delete;
  RestoreSession& operator=(const RestoreSession&) = delete;
  /// Movable so owners can keep sessions in containers; a moved-from
  /// session is only safe to destroy.
  RestoreSession(RestoreSession&&) noexcept = default;
  ~RestoreSession();

  /// Streams the whole object to `sink`, one verified chunk at a time, in
  /// recipe order. Returns the number of bytes streamed (== size()). Throws
  /// std::runtime_error on any fingerprint or size mismatch — the sink has
  /// then received a strict prefix of the object, never silently wrong or
  /// reordered bytes. Repeatable: each call performs a full pass.
  uint64_t streamTo(const ByteSink& sink);

  /// Streams the plaintext range [offset, offset + length) to `sink`,
  /// clamped to the object end; returns the bytes streamed (0 when `offset`
  /// is at or past the end). Only the chunks covering the range are fetched
  /// and verified — the same planner/prefetch/verify pipeline as streamTo
  /// over the covering entry window — so serving a bounded range out of an
  /// arbitrarily large object costs O(range + batch), not O(object). The
  /// server daemon's restore-range protocol is built on this. Repeatable
  /// and usable at any offset order.
  uint64_t streamRange(uint64_t offset, uint64_t length, const ByteSink& sink);

  /// Convenience: materializes the whole object (for callers that need it in
  /// memory; prefer streamTo for large objects).
  [[nodiscard]] ByteVec readAll();

  [[nodiscard]] const std::string& objectName() const {
    return fileRecipe_.fileName;
  }
  [[nodiscard]] uint64_t size() const { return fileRecipe_.fileSize; }
  [[nodiscard]] size_t chunkCount() const { return fileRecipe_.entries.size(); }

 private:
  friend class DedupClient;

  /// Throws std::invalid_argument when the recipes disagree on chunk count.
  RestoreSession(DedupClient& client, FileRecipe fileRecipe,
                 KeyRecipe keyRecipe);

  /// The shared pipeline: streams recipe entries [entryBegin, entryEnd) to
  /// `sink` and returns the bytes emitted.
  uint64_t streamEntries(size_t entryBegin, size_t entryEnd,
                         const ByteSink& sink);

  /// Builds entryStarts_ (lazily, first range call) and validates that the
  /// entry sizes sum to the recipe's file size.
  void ensureEntryStarts();

  DedupClient* client_;
  FileRecipe fileRecipe_;
  KeyRecipe keyRecipe_;
  /// entryStarts_[i] = plaintext offset of entry i; size entries + 1 so
  /// entryStarts_.back() == fileSize. Empty until the first streamRange.
  std::vector<uint64_t> entryStarts_;
};

}  // namespace freqdedup
