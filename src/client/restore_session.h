// Streaming restore session (one per in-flight object).
//
// Streams a backed-up object to a caller-supplied sink one chunk at a time,
// verifying every chunk end-to-end (ciphertext fingerprint against the file
// recipe, decrypted plaintext fingerprint against the recipe's plaintext
// fingerprint) — so a restore or an fsck-style deep verify never holds more
// than one chunk of the object in memory.
//
// Sessions are vended by DedupClient and are not thread-safe individually,
// but distinct sessions of one client may run concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "storage/recipe.h"

namespace freqdedup {

class DedupClient;

/// Receives the next plaintext bytes of the object, in order. The view is
/// only valid for the duration of the call.
using ByteSink = std::function<void(ByteView)>;

class RestoreSession {
 public:
  RestoreSession(const RestoreSession&) = delete;
  RestoreSession& operator=(const RestoreSession&) = delete;
  ~RestoreSession();

  /// Streams the whole object to `sink`, one verified chunk at a time.
  /// Returns the number of bytes streamed (== size()). Throws
  /// std::runtime_error on any fingerprint or size mismatch. Repeatable:
  /// each call performs a full pass.
  uint64_t streamTo(const ByteSink& sink);

  /// Convenience: materializes the whole object (for callers that need it in
  /// memory; prefer streamTo for large objects).
  [[nodiscard]] ByteVec readAll();

  [[nodiscard]] const std::string& objectName() const {
    return fileRecipe_.fileName;
  }
  [[nodiscard]] uint64_t size() const { return fileRecipe_.fileSize; }
  [[nodiscard]] size_t chunkCount() const { return fileRecipe_.entries.size(); }

 private:
  friend class DedupClient;

  /// Throws std::invalid_argument when the recipes disagree on chunk count.
  RestoreSession(DedupClient& client, FileRecipe fileRecipe,
                 KeyRecipe keyRecipe);

  DedupClient* client_;
  FileRecipe fileRecipe_;
  KeyRecipe keyRecipe_;
};

}  // namespace freqdedup
