#include "client/restore_session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "client/dedup_client.h"
#include "crypto/mle.h"
#include "obs/trace.h"
#include "pipeline/ordered_completion.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

void RestoreOptions::validate() const {
  if (parallelism == 0)
    throw std::invalid_argument("RestoreOptions: parallelism must be >= 1");
  if (batchBytes == 0)
    throw std::invalid_argument("RestoreOptions: batchBytes must be >= 1");
  if (maxBatchContainers == 0)
    throw std::invalid_argument(
        "RestoreOptions: maxBatchContainers must be >= 1");
}

namespace {

/// Half-open range of recipe entries fetched by one store round trip.
struct Batch {
  size_t begin = 0;
  size_t end = 0;
};

/// Chunks not yet sealed into a container share one pseudo-container for
/// batching purposes (they are served from the open-chunk table anyway).
constexpr uint32_t kUnplacedContainer = UINT32_MAX;

/// Process-wide restore metrics, resolved once.
struct RestoreMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& sessionsOpened = reg.counter("restore.sessions_opened");
  obs::Counter& bytesStreamed = reg.counter("restore.bytes_streamed");
  obs::Counter& chunksStreamed = reg.counter("restore.chunks_streamed");
  obs::Counter& batchesPlanned = reg.counter("restore.batches_planned");
  obs::Histogram& batchChunks = reg.histogram("restore.batch_chunks");
  obs::Histogram& batchBytes = reg.histogram("restore.batch_bytes");
  obs::Histogram& streamUs = reg.histogram("restore.stream_us");
  obs::Histogram& fetchBatchUs = reg.histogram("restore.fetch_batch_us");
  /// Batches fetched ahead of the in-order emitter but not yet emitted.
  obs::Gauge& prefetchWindow = reg.gauge("restore.prefetch_window");

  static RestoreMetrics& get() {
    static RestoreMetrics m;
    return m;
  }
};

/// Incremental container-locality batch planner: entries are fed in recipe
/// order (with their container placement) and cut into batches when one
/// would exceed the byte target or span too many distinct containers.
/// Working state is O(containers per batch), so planning a multi-gigabyte
/// recipe never materializes per-entry side tables.
class BatchPlanner {
 public:
  explicit BatchPlanner(const RestoreOptions& options) : options_(options) {}

  /// Feed entry `index` (consecutive from any starting entry — range
  /// restores begin mid-recipe) of `sizeBytes` ciphertext placed in
  /// `container`.
  void add(size_t index, uint32_t sizeBytes, uint32_t container) {
    bool newContainer =
        std::find(containers_.begin(), containers_.end(), container) ==
        containers_.end();
    const bool cut =
        current_.end > current_.begin &&
        (batchBytes_ + sizeBytes > options_.batchBytes ||
         (newContainer && containers_.size() >= options_.maxBatchContainers));
    if (cut) {
      batches_.push_back(current_);
      current_.begin = index;
      batchBytes_ = 0;
      containers_.clear();
      newContainer = true;
    }
    if (current_.end == current_.begin) current_.begin = index;  // first add
    current_.end = index + 1;
    batchBytes_ += sizeBytes;
    if (newContainer) containers_.push_back(container);
  }

  std::vector<Batch> finish() {
    if (current_.end > current_.begin) batches_.push_back(current_);
    return std::move(batches_);
  }

 private:
  const RestoreOptions& options_;
  std::vector<Batch> batches_;
  Batch current_;
  uint64_t batchBytes_ = 0;
  std::vector<uint32_t> containers_;  // distinct, small by construction
};

}  // namespace

RestoreSession::RestoreSession(DedupClient& client, FileRecipe fileRecipe,
                               KeyRecipe keyRecipe)
    : client_(&client),
      fileRecipe_(std::move(fileRecipe)),
      keyRecipe_(std::move(keyRecipe)) {
  if (fileRecipe_.entries.size() != keyRecipe_.keys.size())
    throw std::invalid_argument("RestoreSession: file and key recipes "
                                "disagree on chunk count");
  RestoreMetrics::get().sessionsOpened.add();
}

RestoreSession::~RestoreSession() = default;

uint64_t RestoreSession::streamTo(const ByteSink& sink) {
  const uint64_t streamed =
      streamEntries(0, fileRecipe_.entries.size(), sink);
  if (streamed != fileRecipe_.fileSize)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe_.fileName);
  return streamed;
}

void RestoreSession::ensureEntryStarts() {
  if (!entryStarts_.empty()) return;
  const std::vector<RecipeEntry>& entries = fileRecipe_.entries;
  std::vector<uint64_t> starts;
  starts.reserve(entries.size() + 1);
  uint64_t at = 0;
  starts.push_back(at);
  for (const RecipeEntry& e : entries) {
    at += e.size;
    starts.push_back(at);
  }
  // CTR preserves length, so entry sizes are plaintext sizes and must sum
  // to the recipe's file size; a recipe that disagrees with itself would
  // silently mis-map offsets.
  if (at != fileRecipe_.fileSize)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe_.fileName);
  entryStarts_ = std::move(starts);
}

uint64_t RestoreSession::streamRange(uint64_t offset, uint64_t length,
                                     const ByteSink& sink) {
  const uint64_t size = fileRecipe_.fileSize;
  if (offset >= size || length == 0) return 0;
  const uint64_t want = std::min(length, size - offset);
  ensureEntryStarts();
  // Entry window covering [offset, offset + want): the entry containing
  // `offset` through the entry containing the last requested byte.
  const size_t entryBegin = static_cast<size_t>(
      std::upper_bound(entryStarts_.begin(), entryStarts_.end(), offset) -
      entryStarts_.begin() - 1);
  const size_t entryEnd = static_cast<size_t>(
      std::upper_bound(entryStarts_.begin(), entryStarts_.end(),
                       offset + want - 1) -
      entryStarts_.begin());
  uint64_t skip = offset - entryStarts_[entryBegin];
  uint64_t remaining = want;
  streamEntries(entryBegin, entryEnd, [&](ByteView bytes) {
    if (skip >= bytes.size()) {
      skip -= bytes.size();
      return;
    }
    bytes = bytes.subspan(static_cast<size_t>(skip));
    skip = 0;
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(bytes.size(), remaining));
    if (take > 0) sink(bytes.subspan(0, take));
    remaining -= take;
  });
  if (remaining != 0)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe_.fileName);
  return want;
}

uint64_t RestoreSession::streamEntries(size_t entryBegin, size_t entryEnd,
                                       const ByteSink& sink) {
  RestoreMetrics& m = RestoreMetrics::get();
  obs::ObsSpan streamSpan(&m.streamUs, "restore.stream", "restore");
  const std::vector<RecipeEntry>& entries = fileRecipe_.entries;
  // Deliberately NOT under the client's store mutex: the store's read path
  // is internally synchronized, so concurrent restores (and a concurrent
  // backup's store writes) overlap with this session's I/O.
  BackupStore& store = client_->store();
  const RestoreOptions& options = client_->restoreOptions();

  // Placement is queried in bounded slices and fed straight into the
  // incremental planner: chunkLocator holds the store's metadata lock for
  // its whole span, and a multi-gigabyte recipe must stall concurrent
  // writers/restores for neither one monolithic index scan nor O(entries)
  // side tables. The placements only shape batches, so a write landing
  // between slices is harmless.
  constexpr size_t kLocatorSlice = 4096;
  BatchPlanner planner(options);
  {
    std::vector<Fp> sliceFps;
    sliceFps.reserve(std::min(kLocatorSlice, entryEnd - entryBegin));
    for (size_t off = entryBegin; off < entryEnd; off += kLocatorSlice) {
      const size_t count = std::min(kLocatorSlice, entryEnd - off);
      sliceFps.clear();
      for (size_t k = 0; k < count; ++k)
        sliceFps.push_back(entries[off + k].cipherFp);
      const auto placements = store.chunkLocator(sliceFps);
      for (size_t k = 0; k < count; ++k)
        planner.add(off + k, entries[off + k].size,
                    placements[k] ? placements[k]->containerId
                                  : kUnplacedContainer);
    }
  }
  const std::vector<Batch> batches = planner.finish();
  m.batchesPlanned.add(batches.size());

  ThreadPool* pool = client_->pool_.get();
  uint64_t streamed = 0;

  const std::function<std::vector<ByteVec>(size_t)> fetchBatch =
      [&](size_t b) {
        const Batch& batch = batches[b];
        std::vector<Fp> fps;
        fps.reserve(batch.end - batch.begin);
        uint64_t batchBytes = 0;
        for (size_t i = batch.begin; i < batch.end; ++i) {
          fps.push_back(entries[i].cipherFp);
          batchBytes += entries[i].size;
        }
        m.batchChunks.record(fps.size());
        m.batchBytes.record(batchBytes);
        obs::ObsSpan span(&m.fetchBatchUs, "restore.fetch_batch", "restore");
        auto ciphers = store.getChunks(fps);
        span.finish();
        // Fetched, not yet handed to the in-order emitter.
        m.prefetchWindow.add();
        return ciphers;
      };
  const std::function<void(size_t, std::vector<ByteVec>&&)> emitBatch =
      [&](size_t b, std::vector<ByteVec>&& ciphers) {
        m.prefetchWindow.sub();
        const Batch& batch = batches[b];
        const size_t count = batch.end - batch.begin;
        std::vector<ByteVec> plains(count);
        const auto decryptRange = [&](size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            const size_t i = batch.begin + k;
            const RecipeEntry& entry = entries[i];
            // End-to-end verification: the store must hand back exactly the
            // ciphertext the recipe names, and decryption must reproduce the
            // plaintext the recipe fingerprinted at backup time.
            if (fpOfContent(ciphers[k]) != entry.cipherFp)
              throw std::runtime_error(
                  "restore: ciphertext fingerprint mismatch for " +
                  fpToHex(entry.cipherFp));
            plains[k] =
                MleScheme::decryptWithKey(keyRecipe_.keys[i], ciphers[k]);
            if (entry.plainFp != 0 && fpOfContent(plains[k]) != entry.plainFp)
              throw std::runtime_error(
                  "restore: plaintext fingerprint mismatch for " +
                  fpToHex(entry.cipherFp));
          }
        };
        if (pool != nullptr && options.parallelism > 1) {
          parallelForShared(*pool, count, decryptRange);
        } else {
          decryptRange(0, count);
        }
        // Strictly in-order emission, batch by batch, chunk by chunk.
        uint64_t emitted = 0;
        for (size_t k = 0; k < count; ++k) {
          emitted += plains[k].size();
          sink(ByteView(plains[k].data(), plains[k].size()));
        }
        streamed += emitted;
        m.chunksStreamed.add(count);
        m.bytesStreamed.add(emitted);
      };

  orderedProduceConsume<std::vector<ByteVec>>(
      options.readAheadBatches > 0 ? pool : nullptr, options.readAheadBatches,
      batches.size(), fetchBatch, emitBatch);

  return streamed;
}

ByteVec RestoreSession::readAll() {
  ByteVec content;
  content.reserve(fileRecipe_.fileSize);
  streamTo([&content](ByteView bytes) { appendBytes(content, bytes); });
  return content;
}

}  // namespace freqdedup
