#include "client/restore_session.h"

#include <stdexcept>
#include <utility>

#include "client/dedup_client.h"
#include "crypto/mle.h"

namespace freqdedup {

RestoreSession::RestoreSession(DedupClient& client, FileRecipe fileRecipe,
                               KeyRecipe keyRecipe)
    : client_(&client),
      fileRecipe_(std::move(fileRecipe)),
      keyRecipe_(std::move(keyRecipe)) {
  if (fileRecipe_.entries.size() != keyRecipe_.keys.size())
    throw std::invalid_argument("RestoreSession: file and key recipes "
                                "disagree on chunk count");
}

RestoreSession::~RestoreSession() = default;

uint64_t RestoreSession::streamTo(const ByteSink& sink) {
  uint64_t streamed = 0;
  for (size_t i = 0; i < fileRecipe_.entries.size(); ++i) {
    const RecipeEntry& entry = fileRecipe_.entries[i];
    ByteVec cipher;
    {
      std::lock_guard lock(client_->storeMu_);
      cipher = client_->store_->getChunk(entry.cipherFp);
    }
    // End-to-end verification: the store must hand back exactly the
    // ciphertext the recipe names, and decryption must reproduce the
    // plaintext the recipe fingerprinted at backup time.
    if (fpOfContent(cipher) != entry.cipherFp)
      throw std::runtime_error(
          "restore: ciphertext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    const ByteVec plain =
        MleScheme::decryptWithKey(keyRecipe_.keys[i], cipher);
    if (entry.plainFp != 0 && fpOfContent(plain) != entry.plainFp)
      throw std::runtime_error(
          "restore: plaintext fingerprint mismatch for " +
          fpToHex(entry.cipherFp));
    streamed += plain.size();
    sink(ByteView(plain.data(), plain.size()));
  }
  if (streamed != fileRecipe_.fileSize)
    throw std::runtime_error("restore: size mismatch for " +
                             fileRecipe_.fileName);
  return streamed;
}

ByteVec RestoreSession::readAll() {
  ByteVec content;
  content.reserve(fileRecipe_.fileSize);
  streamTo([&content](ByteView bytes) { appendBytes(content, bytes); });
  return content;
}

}  // namespace freqdedup
