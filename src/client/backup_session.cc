#include "client/backup_session.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "client/dedup_client.h"
#include "common/check.h"
#include "crypto/mle.h"
#include "obs/trace.h"
#include "pipeline/thread_pool.h"

namespace freqdedup {

namespace {

/// Process-wide backup/chunking metrics, resolved once. Sessions are
/// transient, so their counters live in the global registry.
struct BackupMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& sessionsOpened = reg.counter("backup.sessions_opened");
  obs::Counter& bytesAppended = reg.counter("backup.bytes_appended");
  obs::Counter& chunksNew = reg.counter("backup.chunks_new");
  obs::Counter& chunksDuplicate = reg.counter("backup.chunks_duplicate");
  obs::Histogram& appendUs = reg.histogram("backup.append_us");
  obs::Histogram& finishUs = reg.histogram("backup.finish_us");
  obs::Counter& chunksProduced = reg.counter("chunk.chunks_produced");
  obs::Counter& chunkBytes = reg.counter("chunk.bytes_total");
  obs::Histogram& chunkSizeBytes = reg.histogram("chunk.size_bytes");
  obs::Counter& segmentsClosed = reg.counter("chunk.segments_closed");

  static BackupMetrics& get() {
    static BackupMetrics m;
    return m;
  }
};

/// Ciphertexts in flight on the parallel paths: encryption runs at most this
/// many chunks ahead of the serial store loop, bounding extra memory to
/// O(window * chunk size) regardless of object size. Matches the historic
/// one-shot window so parallel grouping is identical (the outcome does not
/// depend on it — encryption is pure and the store order is fixed).
constexpr size_t kEncryptWindowChunks = 1024;

/// One chunk after the (parallelizable) encrypt stage.
struct EncryptedChunk {
  AesKey key;
  ByteVec cipher;
  Fp cipherFp = 0;
  Fp plainFp = 0;
};

}  // namespace

std::vector<size_t> scrambleOrder(size_t recordCount,
                                  std::span<const Segment> segments,
                                  Rng& rng) {
  std::vector<size_t> order;
  order.reserve(recordCount);
  for (const Segment& seg : segments) {
    FDD_CHECK(seg.end <= recordCount);
    std::deque<size_t> scrambled;
    for (size_t i = seg.begin; i < seg.end; ++i) {
      // Algorithm 5, lines 7-12: odd random number -> front, else back.
      if (rng.next() & 1) {
        scrambled.push_front(i);
      } else {
        scrambled.push_back(i);
      }
    }
    order.insert(order.end(), scrambled.begin(), scrambled.end());
  }
  FDD_CHECK_MSG(order.size() == recordCount,
                "segments must cover all records");
  return order;
}

BackupSession::BackupSession(DedupClient& client, std::string name)
    : client_(&client),
      name_(std::move(name)),
      scrambleRng_(client.options_.scrambleSeed) {
  BackupMetrics::get().sessionsOpened.add();
  stream_ =
      client.chunker_->makeStream([this](ByteView chunk) { onChunk(chunk); });
  if (client.options_.scheme != EncryptionScheme::kMle) {
    segmenter_ = std::make_unique<StreamSegmenter>(
        client.options_.segmentParams,
        [this](const Segment& seg) { onSegment(seg); });
  }
}

BackupSession::~BackupSession() = default;

void BackupSession::append(ByteView data) {
  FDD_CHECK_MSG(!finished_, "append() on a finished BackupSession");
  BackupMetrics& m = BackupMetrics::get();
  obs::ObsSpan span(&m.appendUs, "backup.append", "backup");
  m.bytesAppended.add(data.size());
  bytesAppended_ += data.size();
  stream_->push(data);
}

BackupOutcome BackupSession::finish() {
  FDD_CHECK_MSG(!finished_, "finish() called twice on a BackupSession");
  obs::ObsSpan span(&BackupMetrics::get().finishUs, "backup.finish", "backup");
  finished_ = true;
  stream_->flush();  // emits the trailing partial chunk, if any
  if (segmenter_) {
    segmenter_->finish();  // closes the open segment
    FDD_CHECK_MSG(segChunks_.empty(), "segment buffer not drained");
  } else if (!mleWindow_.empty()) {
    encryptMleWindow();
  }
  outcome_.fileRecipe.fileName = name_;
  outcome_.fileRecipe.fileSize = bytesAppended_;
  outcome_.chunkCount = outcome_.fileRecipe.entries.size();
  return std::move(outcome_);
}

void BackupSession::storeChunk(Fp cipherFp, ByteView cipher) {
  bool isNew = false;
  {
    std::lock_guard lock(client_->storeMu_);
    isNew = client_->store_->putChunk(cipherFp, cipher);
  }
  BackupMetrics& m = BackupMetrics::get();
  if (isNew) {
    ++outcome_.newChunks;
    outcome_.newChunkFps.push_back(cipherFp);
    m.chunksNew.add();
  } else {
    ++outcome_.duplicateChunks;
    outcome_.duplicateChunkFps.push_back(cipherFp);
    m.chunksDuplicate.add();
  }
}

void BackupSession::onChunk(ByteView chunk) {
  BackupMetrics& m = BackupMetrics::get();
  m.chunksProduced.add();
  m.chunkBytes.add(chunk.size());
  m.chunkSizeBytes.record(chunk.size());
  if (segmenter_) {
    // MinHash path: buffer the chunk, then let the segmenter decide whether
    // this record closes a segment (possibly before admitting it).
    const ChunkRecord record{fpOfContent(chunk),
                             static_cast<uint32_t>(chunk.size())};
    segChunks_.emplace_back(chunk.begin(), chunk.end());
    segRecords_.push_back(record);
    segmenter_->push(record);
    return;
  }

  // MLE path, parallel: fill the encrypt window. Gated on the backup
  // options, not on pool existence — the pool is shared with the restore
  // stages and may exist solely for them, while this backup is configured
  // serial (one ciphertext in flight, no window buffering).
  if (client_->options_.parallelism > 1) {
    mleWindow_.emplace_back(chunk.begin(), chunk.end());
    if (mleWindow_.size() == kEncryptWindowChunks) encryptMleWindow();
    return;
  }

  // MLE path, serial: one ciphertext in flight at a time (bounded memory).
  const Fp plainFp = fpOfContent(chunk);
  const AesKey key = client_->keyManager_->deriveChunkKey(plainFp);
  const ByteVec cipher = MleScheme::encryptWithKey(key, chunk);
  const Fp cipherFp = fpOfContent(cipher);
  storeChunk(cipherFp, cipher);
  outcome_.fileRecipe.entries.push_back(
      {cipherFp, static_cast<uint32_t>(cipher.size()), plainFp});
  outcome_.keyRecipe.keys.push_back(key);
}

void BackupSession::encryptMleWindow() {
  const size_t count = mleWindow_.size();
  std::vector<EncryptedChunk> window(count);
  parallelForShared(*client_->pool_, count, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const Fp plainFp = fpOfContent(mleWindow_[k]);
      const AesKey key = client_->keyManager_->deriveChunkKey(plainFp);
      ByteVec cipher = MleScheme::encryptWithKey(key, mleWindow_[k]);
      const Fp cipherFp = fpOfContent(cipher);
      window[k] = {key, std::move(cipher), cipherFp, plainFp};
    }
  });
  for (const EncryptedChunk& e : window) {
    storeChunk(e.cipherFp, e.cipher);
    outcome_.fileRecipe.entries.push_back(
        {e.cipherFp, static_cast<uint32_t>(e.cipher.size()), e.plainFp});
    outcome_.keyRecipe.keys.push_back(e.key);
  }
  mleWindow_.clear();
}

void BackupSession::onSegment(const Segment& seg) {
  FDD_CHECK_MSG(seg.begin == segBase_, "segments must close in order");
  BackupMetrics::get().segmentsClosed.add();
  const size_t count = seg.count();
  FDD_CHECK_MSG(count <= segChunks_.size(), "segment exceeds buffered chunks");
  const std::span<const ChunkRecord> records(segRecords_.data(), count);

  // Per-segment key from the segment's minimum fingerprint (Algorithm 4).
  const Segment local{0, count};
  const AesKey segKey = client_->keyManager_->deriveSegmentKey(
      segmentMinFingerprint(records, local));

  // Scrambling permutes the upload/storage order within the segment; the
  // recipe keeps the original order so restore is unaffected (Section 6.2).
  // Segments close strictly in order, so the scramble Rng consumes draws in
  // exactly the order the one-shot scrambleOrder over all segments does.
  std::vector<size_t> order;
  if (client_->options_.scheme == EncryptionScheme::kMinHashScrambled) {
    order = scrambleOrder(count, std::span(&local, 1), scrambleRng_);
  } else {
    order.resize(count);
    std::iota(order.begin(), order.end(), size_t{0});
  }

  std::vector<RecipeEntry> entryOf(count);  // indexed by original position
  // Same gating as the MLE path: a shared pool may exist for restore only.
  if (client_->options_.parallelism <= 1) {
    // Serial: encrypt in upload order, one ciphertext in flight.
    for (const size_t i : order) {
      const ByteVec cipher = MleScheme::encryptWithKey(segKey, segChunks_[i]);
      const Fp cipherFp = fpOfContent(cipher);
      storeChunk(cipherFp, cipher);
      entryOf[i] = {cipherFp, static_cast<uint32_t>(cipher.size()),
                    records[i].fp};
    }
  } else {
    // Parallel: encrypt the segment's chunks concurrently, then store them
    // serially in the (possibly scrambled) upload order, so parallelism
    // never changes what the server observes.
    std::vector<EncryptedChunk> window(count);
    parallelForShared(*client_->pool_, count, [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const size_t i = order[k];
        ByteVec cipher = MleScheme::encryptWithKey(segKey, segChunks_[i]);
        const Fp cipherFp = fpOfContent(cipher);
        window[k] = {segKey, std::move(cipher), cipherFp};
      }
    });
    for (size_t k = 0; k < count; ++k) {
      const size_t i = order[k];
      storeChunk(window[k].cipherFp, window[k].cipher);
      entryOf[i] = {window[k].cipherFp,
                    static_cast<uint32_t>(window[k].cipher.size()),
                    records[i].fp};
    }
  }

  // Recipes stay in original order; all chunks of a segment share its key.
  outcome_.fileRecipe.entries.insert(outcome_.fileRecipe.entries.end(),
                                     entryOf.begin(), entryOf.end());
  outcome_.keyRecipe.keys.insert(outcome_.keyRecipe.keys.end(), count, segKey);

  // Drop the consumed prefix; an overflow-closed segment leaves the record
  // that triggered the close as the start of the next segment.
  segChunks_.erase(segChunks_.begin(),
                   segChunks_.begin() + static_cast<ptrdiff_t>(count));
  segRecords_.erase(segRecords_.begin(),
                    segRecords_.begin() + static_cast<ptrdiff_t>(count));
  segBase_ = seg.end;
}

}  // namespace freqdedup
