// Streaming backup session (one per in-flight object).
//
// A BackupSession consumes an object's bytes incrementally — append() any
// number of times, then finish() — and produces exactly the recipes and
// store contents the historic one-shot BackupManager::backup() produced, at
// every append granularity, for every scheme and parallelism level:
//  - chunk boundaries come from the chunker's incremental ChunkStream, which
//    is byte-equivalent to Chunker::split();
//  - MLE encrypts chunk by chunk (a bounded window of chunks when parallel);
//  - MinHash(+scrambling) buffers exactly one open segment of plaintext
//    chunks, closing segments with the same Sparse-Indexing rule as the
//    batch segmenter (StreamSegmenter) and consuming the scramble Rng in the
//    same per-segment order as Algorithm 5.
// Peak client-side memory is therefore O(segment bytes + encrypt window),
// independent of object size: arbitrarily large objects stream through.
//
// Sessions are vended by DedupClient (see dedup_client.h) and are not
// thread-safe individually, but distinct sessions of one client may run
// concurrently from different threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chunking/chunker.h"
#include "chunking/segmenter.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "storage/recipe.h"

namespace freqdedup {

class DedupClient;

enum class EncryptionScheme {
  kMle,              // per-chunk server-aided MLE (deterministic)
  kMinHash,          // segment-keyed MinHash encryption (Algorithm 4)
  kMinHashScrambled  // MinHash + per-segment scrambling (Algorithms 4+5)
};

struct BackupOptions {
  EncryptionScheme scheme = EncryptionScheme::kMle;
  SegmentParams segmentParams;
  uint64_t scrambleSeed = 1;
  /// Worker threads for the per-chunk key-derivation + encryption stage.
  /// 1 keeps the fully serial path (one ciphertext in flight); any larger
  /// value selects the windowed parallel path, which fans out over the
  /// client's worker pool — shared with the restore stages and sized to the
  /// larger of the two parallelism settings, so this is a floor on pool
  /// width, not a per-stage cap. Any value produces bit-identical recipes
  /// and store contents: chunks are encrypted in parallel but stored in the
  /// same order as the serial path.
  uint32_t parallelism = 1;
};

struct BackupOutcome {
  FileRecipe fileRecipe;
  KeyRecipe keyRecipe;
  size_t chunkCount = 0;
  size_t newChunks = 0;
  size_t duplicateChunks = 0;
  /// Ciphertext fingerprints partitioned by store outcome, in store order:
  /// chunks this backup added vs. chunks the store already held. The server
  /// daemon classifies duplicateChunkFps against the writing tenant's own
  /// history to measure cross-tenant dedup (the leakage surface).
  std::vector<Fp> newChunkFps;
  std::vector<Fp> duplicateChunkFps;
};

class BackupSession {
 public:
  BackupSession(const BackupSession&) = delete;
  BackupSession& operator=(const BackupSession&) = delete;
  /// NOT movable: the incremental chunk stream and segmenter hold callbacks
  /// that capture this session's address, so a moved session would keep
  /// feeding chunks into the moved-from shell. Owners that must keep many
  /// sessions in containers (the server daemon) use
  /// DedupClient::beginBackupHandle, which pins the session on the heap.
  BackupSession(BackupSession&&) = delete;
  ~BackupSession();

  /// Appends the next bytes of the object. Chunks are encrypted and stored
  /// as soon as their boundaries (and, for MinHash, their segment) are
  /// known. Throws std::logic_error after finish().
  void append(ByteView data);

  /// Ends the object: flushes the final partial chunk and the open segment,
  /// and returns the completed recipes. The session is unusable afterwards.
  BackupOutcome finish();

  [[nodiscard]] const std::string& objectName() const { return name_; }
  [[nodiscard]] uint64_t bytesAppended() const { return bytesAppended_; }

 private:
  friend class DedupClient;

  BackupSession(DedupClient& client, std::string name);

  void onChunk(ByteView chunk);
  void onSegment(const Segment& seg);
  void storeChunk(Fp cipherFp, ByteView cipher);
  void encryptMleWindow();

  DedupClient* client_;
  std::string name_;
  bool finished_ = false;
  uint64_t bytesAppended_ = 0;
  BackupOutcome outcome_;  // entries/keys/counters accumulate in order

  std::unique_ptr<ChunkStream> stream_;

  // MLE parallel path: plaintext chunks of the current encrypt window.
  std::vector<ByteVec> mleWindow_;

  // MinHash path: plaintext chunks and records of the open segment (plus at
  // most one record the segmenter has deferred to the next segment).
  std::unique_ptr<StreamSegmenter> segmenter_;
  std::vector<ByteVec> segChunks_;
  std::vector<ChunkRecord> segRecords_;
  size_t segBase_ = 0;  // global index of segChunks_[0]
  Rng scrambleRng_;
};

/// Computes the per-segment scrambled visit order of Algorithm 5: for each
/// chunk a random bit decides whether it is prepended or appended to the
/// scrambled segment. Returns a permutation of [0, records) (indices into the
/// original order).
std::vector<size_t> scrambleOrder(size_t recordCount,
                                  std::span<const Segment> segments, Rng& rng);

}  // namespace freqdedup
