// Session-based streaming client for encrypted deduplication — the Figure-2
// client of the paper as a connection→session layering (after WiredTiger's
// connection/session/cursor split): one DedupClient holds the shared,
// long-lived collaborators (chunk store, key manager, chunker, options, the
// encrypt worker pool) and vends cheap, independently usable sessions.
//
//   DedupClient client(store, keyManager, chunker, options);
//   BackupSession s = client.beginBackup("vm.img");
//   while (readMore(buf)) s.append(buf);         // bounded memory
//   BackupOutcome outcome = s.finish();
//   client.commitBackup("vm.img", outcome, userKey, rng);
//   client.beginRestore("vm.img", userKey).streamTo(sink);
//
// Concurrency: sessions are single-threaded objects, but any number of
// sessions of one client may run concurrently from different threads —
// store access is serialized internally and the shared encrypt pool tracks
// completion per session (parallelForShared). Recipes and store contents of
// each session are bit-identical to a serial run of the same objects;
// only the interleaving of chunks from different concurrent sessions into
// containers is scheduling-dependent.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "chunking/chunker.h"
#include "client/backup_session.h"
#include "client/restore_session.h"
#include "common/rng.h"
#include "crypto/key_manager.h"
#include "storage/backup_store.h"

namespace freqdedup {

class ThreadPool;

class DedupClient {
 public:
  /// Full client. All referenced collaborators must outlive the client;
  /// sessions must not outlive it either. Throws std::invalid_argument on
  /// invalid options (zero parallelism, invalid segment params, invalid
  /// restore options). One worker pool is shared by the backup encrypt
  /// stage and the restore prefetch/decrypt stages, sized to the larger of
  /// the two parallelism settings.
  DedupClient(BackupStore& store, const KeyManager& keyManager,
              const Chunker& chunker, BackupOptions options = {},
              RestoreOptions restoreOptions = {});

  /// Restore/administration-only client: restore, delete, list and verify
  /// need neither a chunker nor a key manager. beginBackup() throws.
  explicit DedupClient(BackupStore& store,
                       RestoreOptions restoreOptions = {});

  ~DedupClient();

  DedupClient(const DedupClient&) = delete;
  DedupClient& operator=(const DedupClient&) = delete;

  /// Opens a streaming backup session for one object.
  [[nodiscard]] BackupSession beginBackup(std::string name);

  /// Heap-allocated variant for owners that keep many sessions in
  /// containers (the server daemon's per-connection tables): BackupSession
  /// pins its address — its chunk stream calls back into the session — so
  /// it cannot be stored by value in a map; the handle form can.
  [[nodiscard]] std::unique_ptr<BackupSession> beginBackupHandle(
      std::string name);

  /// Opens a streaming restore session from explicit recipes.
  [[nodiscard]] RestoreSession beginRestore(FileRecipe fileRecipe,
                                            KeyRecipe keyRecipe);

  /// Opens a streaming restore session for a committed backup: loads the
  /// sealed recipe pair and unseals it with the user key. Throws
  /// std::runtime_error if no such backup exists or unsealing fails.
  [[nodiscard]] RestoreSession beginRestore(const std::string& name,
                                            const AesKey& userKey);

  /// Commits a completed backup: seals both recipes under the user key,
  /// stores them as one blob, and records the backup's chunk references in
  /// the store so deletion and garbage collection can account for them.
  ///
  /// Crash-safe also when re-committing an existing name: the references are
  /// first widened to the union of old and new (one atomic manifest swap),
  /// then the recipe blob is swapped (one atomic put), then the references
  /// shrink to the new set — so at every instant the stored blob's chunks
  /// are covered by the manifest and GC can never reclaim them.
  void commitBackup(const std::string& name, const BackupOutcome& outcome,
                    const AesKey& userKey, Rng& rng);

  /// Pipelined commitBackup: performs the same crash-safe three-phase swap,
  /// visible to readers on return, but defers durability to one coalesced
  /// group sync — `durable(ok)` runs on the store's log syncer thread once
  /// the whole commit is on stable storage (ok == false on log failure).
  /// Concurrent committers share a single fdatasync with zero blocked
  /// threads, which is how the server daemon pipelines commits. The
  /// callback must not destroy this client or its store.
  void commitBackupAsync(const std::string& name, const BackupOutcome& outcome,
                         const AesKey& userKey, Rng& rng,
                         std::function<void(bool ok)> durable);

  /// Deletes a committed backup: releases its chunk references and removes
  /// its sealed recipes. Returns false if no such backup exists. Unreferenced
  /// chunks are reclaimed by the store's next collectGarbage().
  bool deleteBackup(const std::string& name);

  /// Names of all committed backups.
  [[nodiscard]] std::vector<std::string> listBackups();

  /// Blob name commitBackup uses for a backup's sealed recipe pair.
  static std::string recipeBlobName(const std::string& name);

  /// Runs `fn(store)` under the client's writer/admin lock — the hook
  /// through which owners layered above the client (the server daemon)
  /// perform store admin operations (usage blobs, manifest reads, flushes)
  /// that must serialize with concurrent session writes. `fn` must not call
  /// back into this client.
  template <typename Fn>
  auto withStore(Fn&& fn) {
    std::lock_guard lock(storeMu_);
    return fn(*store_);
  }

  [[nodiscard]] const BackupOptions& options() const { return options_; }
  [[nodiscard]] const RestoreOptions& restoreOptions() const {
    return restoreOptions_;
  }
  [[nodiscard]] BackupStore& store() { return *store_; }

 private:
  friend class BackupSession;
  friend class RestoreSession;

  BackupStore* store_;
  const KeyManager* keyManager_;  // null in restore-only clients
  const Chunker* chunker_;        // null in restore-only clients
  BackupOptions options_;
  RestoreOptions restoreOptions_;
  std::unique_ptr<ThreadPool> pool_;  // shared workers; null if fully serial
  // Serializes writer/admin store access across sessions. Restore reads
  // (getChunks/chunkLocator) deliberately bypass it — the store's read path
  // is internally synchronized — so concurrent restores overlap their I/O.
  std::mutex storeMu_;
};

/// Derives a user (recipe-sealing) key from a passphrase:
/// SHA-256("user-key:" + passphrase). Shared by backup_system and fsck so a
/// store written by one can be deep-verified by the other.
AesKey userKeyFromPassphrase(std::string_view passphrase);

}  // namespace freqdedup
