// Lightweight span tracing: RAII timers that feed latency histograms and
// optionally emit Chrome trace_event-format JSON for offline flamegraph
// viewing (chrome://tracing, Perfetto, speedscope).
//
// Tracing is opt-in via the FDD_TRACE environment variable:
//   FDD_TRACE=1            write fdd_trace.json in the working directory
//   FDD_TRACE=/path/x.json write there
// When unset (the normal case) a span costs one clock read and one
// histogram record; when no histogram is attached either, it costs nothing.
//
// The output is a strict-JSON trace_event array — one event object per line
// ("JSON lines" inside the array), each a complete ("ph":"X") event with
// microsecond timestamps relative to process start. The array is properly
// closed when the process exits (or TraceWriter::close() runs), so standard
// JSON parsers load it without errors; trace viewers also accept a
// crash-truncated file, per the trace_event spec.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace freqdedup::obs {

/// Microseconds since process start (steady clock).
uint64_t nowMicros() noexcept;

class TraceWriter {
 public:
  /// Opens `path` and writes the array header. ok() is false (and every
  /// emit a no-op) when the file could not be opened.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  /// One complete ("ph":"X") event. `name` and `category` must be plain
  /// identifiers (no JSON escaping is applied).
  void emitComplete(std::string_view name, std::string_view category,
                    uint64_t tsMicros, uint64_t durMicros);

  /// Closes the JSON array and the file. Idempotent; the destructor calls
  /// it, and the process-wide writer is destroyed at exit.
  void close();

  /// The process-wide writer configured by FDD_TRACE, or nullptr when
  /// tracing is off. The env var is read once, on first call.
  static TraceWriter* global();

 private:
  std::mutex mu_;
  FILE* file_ = nullptr;
};

/// RAII span: times a scope, records the elapsed microseconds into an
/// optional histogram, and emits a trace event when FDD_TRACE is active.
/// Move-free, scope-bound by design.
class ObsSpan {
 public:
  explicit ObsSpan(Histogram* latencyMicros, const char* name,
                   const char* category = "fdd")
      : hist_(kObsEnabled ? latencyMicros : nullptr),
        name_(name),
        category_(category),
        writer_(TraceWriter::global()) {
    if (hist_ != nullptr || writer_ != nullptr) start_ = nowMicros();
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ~ObsSpan() { finish(); }

  /// Ends the span early (idempotent) and returns its duration in
  /// microseconds (0 when neither a histogram nor tracing is attached).
  uint64_t finish();

 private:
  Histogram* hist_;
  const char* name_;
  const char* category_;
  TraceWriter* writer_;
  uint64_t start_ = 0;
  bool done_ = false;
  uint64_t elapsed_ = 0;
};

}  // namespace freqdedup::obs
