// Always-on, wait-free metrics registry — the system's one source of truth
// for operational counters (WiredTiger src/support statistics layer is the
// architectural exemplar: cheap unconditional increments on every hot path,
// aggregation deferred to snapshot-on-read).
//
// Three metric kinds, all safe for concurrent update from any thread:
//  - Counter:  monotonic uint64, sharded across cache-line-padded atomic
//    cells keyed by a per-thread slot, so concurrent increments never touch
//    the same cache line (wait-free, contention-free);
//  - Gauge:    signed level (queue depth, window occupancy) with the same
//    sharded add/sub cells — the value is the sum of the cells;
//  - Histogram: log2-bucketed distribution (latencies in microseconds,
//    sizes in bytes) with per-cell count/sum/min/max. Bucket b covers
//    [2^(b-1), 2^b) with bucket 0 reserved for zero, so the bucket scheme
//    is value-range independent and needs no configuration.
//
// A MetricsRegistry names metrics and hands out stable references; the hot
// path never sees the registry again (handles are resolved once). Snapshots
// aggregate the cells into plain maps ordered by name, so two snapshots of
// identical state render byte-identically (text and single-line JSON), and
// support merge (sum) and delta (saturating subtraction) for interval
// measurements.
//
// Scoping: MetricsRegistry::global() serves process-wide subsystems
// (chunking, sessions, pipeline, attack engine). Store instances own their
// own registry so a fresh open starts from zero — the per-connection vs
// per-session scoping split the upcoming server daemon needs.
//
// Compile-out: building with FDD_OBS_DISABLED (CMake -DFREQDEDUP_OBS=OFF)
// turns every update into a no-op for overhead measurement; the registry
// and snapshot APIs keep working and report zeros.
//
// Naming convention: `subsystem.verb_noun` (e.g. store.container_loads,
// restore.batch_bytes); histograms end in a unit suffix (_us, _bytes).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace freqdedup::obs {

#if defined(FDD_OBS_DISABLED)
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Small per-thread slot index used to spread updates across cells. Not a
/// thread id: slots recycle modulo the cell count, which only costs some
/// sharing when more threads than cells update one metric.
size_t threadSlot() noexcept;

/// Update cells per metric. Power of two; 8 cells x 64 B = one padded cell
/// per typical physical core on the machines this targets.
inline constexpr size_t kMetricCells = 8;

class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
#if defined(FDD_OBS_DISABLED)
    (void)n;
#else
    cells_[threadSlot() & (kMetricCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#endif
  }

  /// Snapshot-on-read aggregation: the sum of all cells.
  [[nodiscard]] uint64_t value() const noexcept {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kMetricCells> cells_{};
};

class Gauge {
 public:
  void add(int64_t delta = 1) noexcept {
#if defined(FDD_OBS_DISABLED)
    (void)delta;
#else
    cells_[threadSlot() & (kMetricCells - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
#endif
  }
  void sub(int64_t delta = 1) noexcept { add(-delta); }

  [[nodiscard]] int64_t value() const noexcept {
    int64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  std::array<Cell, kMetricCells> cells_{};
};

/// Aggregated histogram state as a plain value (see Histogram).
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  /// Non-empty buckets only, ascending (lowerBound, count). Lower bounds
  /// follow Histogram::bucketLowerBound.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper-bound estimate of the q-quantile (q in [0,1]) from the bucket
  /// scheme: the lower bound of the first bucket whose cumulative count
  /// reaches q * count. Deterministic integer math, no interpolation.
  [[nodiscard]] uint64_t quantile(double q) const;

  friend bool operator==(const HistogramData&,
                         const HistogramData&) = default;
};

/// Log2-scale histogram: bucket 0 holds zeros, bucket b >= 1 holds values in
/// [2^(b-1), 2^b). 65 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  /// Bucket a value lands in: 0 for 0, else bit_width(value).
  static size_t bucketOf(uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  }
  /// Smallest value of bucket b (0, 1, 2, 4, 8, ...).
  static uint64_t bucketLowerBound(size_t b) noexcept {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  void record(uint64_t value) noexcept {
#if defined(FDD_OBS_DISABLED)
    (void)value;
#else
    Cell& cell = cells_[threadSlot() & (kHistCells - 1)];
    cell.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    atomicMin(cell.min, value);
    atomicMax(cell.max, value);
#endif
  }

  /// Aggregates all cells into one consistent-enough view (counters are
  /// relaxed; concurrent recorders may be mid-update, as with Counter).
  [[nodiscard]] HistogramData data() const;

 private:
  /// Histogram cells are an order of magnitude bigger than counter cells,
  /// so fewer of them: latencies/sizes record at batch or chunk granularity,
  /// not per byte.
  static constexpr size_t kHistCells = 4;

  static void atomicMin(std::atomic<uint64_t>& a, uint64_t v) noexcept {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<uint64_t>& a, uint64_t v) noexcept {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };
  std::array<Cell, kHistCells> cells_{};
};

/// A point-in-time aggregation of a registry: plain ordered maps, so
/// rendering is deterministic (two snapshots of identical state are
/// byte-identical) and arithmetic is value-semantic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] uint64_t counter(const std::string& name) const;
  [[nodiscard]] int64_t gauge(const std::string& name) const;
  [[nodiscard]] HistogramData histogram(const std::string& name) const;

  /// Sums `other` into this snapshot (counters/gauges add; histograms merge
  /// bucket-wise, min of mins, max of maxes). Merging disjoint scopes (the
  /// global registry + a store's registry) composes one unified dump.
  void merge(const MetricsSnapshot& other);

  /// Counters and histogram counts/sums/buckets subtract saturating at zero
  /// (reordered samples must not underflow); gauges subtract signed;
  /// histogram min/max keep this (later) snapshot's values, since interval
  /// extrema are not recoverable from two cumulative states.
  [[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& earlier) const;

  /// Human-readable dump: one `name value` line per metric, histograms as
  /// count/sum/min/mean/max/p50/p99, sorted by name.
  [[nodiscard]] std::string toText() const;

  /// Single-line JSON with sorted keys and integer-only values:
  /// {"counters":{...},"gauges":{...},"histograms":{"h":{"count":..,"sum":..,
  /// "min":..,"max":..,"buckets":[[lowerBound,count],...]}}}
  [[nodiscard]] std::string toJson() const;
};

/// Named metric directory. Registration (name -> handle) takes a lock and
/// may allocate; handles are stable for the registry's lifetime and their
/// updates never touch the registry again. Re-requesting a name returns the
/// same handle; requesting an existing name as a different kind throws
/// std::logic_error (one name, one meaning).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The process-wide registry for long-lived subsystems. Instances with
  /// open/close lifecycles (stores) own their own registry instead, so
  /// reopening starts their counters from zero.
  static MetricsRegistry& global();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace freqdedup::obs
