#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

namespace freqdedup::obs {

uint64_t nowMicros() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

namespace {

/// Small stable id for the current thread, for the trace "tid" field.
uint32_t traceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  file_ = fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    fprintf(stderr, "obs: cannot open trace file %s; tracing disabled\n",
            path.c_str());
    return;
  }
  fputs("[\n", file_);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return;
  // Final instant event carries no trailing comma, closing the array as
  // strict JSON no matter how many events preceded it.
  fprintf(file_,
          "{\"name\":\"trace_end\",\"cat\":\"fdd\",\"ph\":\"i\",\"ts\":%" PRIu64
          ",\"pid\":1,\"tid\":0,\"s\":\"g\"}\n]\n",
          nowMicros());
  fclose(file_);
  file_ = nullptr;
}

void TraceWriter::emitComplete(std::string_view name, std::string_view category,
                               uint64_t tsMicros, uint64_t durMicros) {
  const uint32_t tid = traceTid();
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return;
  fprintf(file_,
          "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\",\"ts\":%" PRIu64
          ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u},\n",
          static_cast<int>(name.size()), name.data(),
          static_cast<int>(category.size()), category.data(), tsMicros,
          durMicros, tid);
}

TraceWriter* TraceWriter::global() {
  // The writer is created on first use and destroyed at static-destruction
  // time, which closes the JSON array for any normally-exiting process.
  static const std::unique_ptr<TraceWriter> writer = [] {
    const char* env = std::getenv("FDD_TRACE");
    if (env == nullptr || *env == '\0') return std::unique_ptr<TraceWriter>();
    const std::string path =
        std::strcmp(env, "1") == 0 ? "fdd_trace.json" : env;
    auto w = std::make_unique<TraceWriter>(path);
    if (!w->ok()) w.reset();
    return w;
  }();
  return writer.get();
}

uint64_t ObsSpan::finish() {
  if (done_) return elapsed_;
  done_ = true;
  if (hist_ == nullptr && writer_ == nullptr) return 0;
  const uint64_t end = nowMicros();
  elapsed_ = end - start_;
  if (hist_ != nullptr) hist_->record(elapsed_);
  if (writer_ != nullptr)
    writer_->emitComplete(name_, category_, start_, elapsed_);
  return elapsed_;
}

}  // namespace freqdedup::obs
