#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace freqdedup::obs {

size_t threadSlot() noexcept {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

uint64_t HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; ceil without floating error on
  // the boundary cases that matter (q=0 -> first sample, q=1 -> last).
  const auto rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (const auto& [lowerBound, n] : buckets) {
    seen += n;
    if (seen >= rank) return lowerBound;
  }
  return max;
}

HistogramData Histogram::data() const {
  HistogramData d;
  std::array<uint64_t, kBuckets> totals{};
  uint64_t min = UINT64_MAX;
  for (const Cell& cell : cells_) {
    for (size_t b = 0; b < kBuckets; ++b)
      totals[b] += cell.buckets[b].load(std::memory_order_relaxed);
    d.count += cell.count.load(std::memory_order_relaxed);
    d.sum += cell.sum.load(std::memory_order_relaxed);
    min = std::min(min, cell.min.load(std::memory_order_relaxed));
    d.max = std::max(d.max, cell.max.load(std::memory_order_relaxed));
  }
  d.min = d.count == 0 ? 0 : min;
  for (size_t b = 0; b < kBuckets; ++b)
    if (totals[b] != 0) d.buckets.emplace_back(bucketLowerBound(b), totals[b]);
  return d;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

HistogramData MetricsSnapshot::histogram(const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? HistogramData{} : it->second;
}

namespace {

/// Saturating a - b for cumulative counters sampled at two points in time.
uint64_t satSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// Bucket lists are sparse maps (lowerBound -> count) in vector clothing;
/// combine merges or diffs them by lower bound.
std::vector<std::pair<uint64_t, uint64_t>> combineBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>>& a,
    const std::vector<std::pair<uint64_t, uint64_t>>& b, bool subtract) {
  std::map<uint64_t, uint64_t> merged(a.begin(), a.end());
  for (const auto& [lb, n] : b) {
    if (subtract) {
      merged[lb] = satSub(merged[lb], n);
    } else {
      merged[lb] += n;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [lb, n] : merged)
    if (n != 0) out.emplace_back(lb, n);
  return out;
}

void appendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void appendU64(std::string& out, uint64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void appendI64(std::string& out, int64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    HistogramData& mine = histograms[name];
    if (mine.count == 0) {
      mine = h;
      continue;
    }
    if (h.count == 0) continue;
    mine.min = std::min(mine.min, h.min);
    mine.max = std::max(mine.max, h.max);
    mine.count += h.count;
    mine.sum += h.sum;
    mine.buckets = combineBuckets(mine.buckets, h.buckets, /*subtract=*/false);
  }
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (const auto& [name, v] : earlier.counters)
    d.counters[name] = satSub(d.counters[name], v);
  for (const auto& [name, v] : earlier.gauges) d.gauges[name] -= v;
  for (const auto& [name, h] : earlier.histograms) {
    HistogramData& mine = d.histograms[name];
    mine.count = satSub(mine.count, h.count);
    mine.sum = satSub(mine.sum, h.sum);
    mine.buckets = combineBuckets(mine.buckets, h.buckets, /*subtract=*/true);
    // min/max stay the later snapshot's: cumulative extrema cannot be
    // un-merged, and the later values at least bound the interval.
  }
  return d;
}

std::string MetricsSnapshot::toText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name;
    out += " ";
    appendU64(out, v);
    out += "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += name;
    out += " ";
    appendI64(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    char buf[160];
    snprintf(buf, sizeof(buf),
             " count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64 " mean=%" PRIu64
             " max=%" PRIu64 " p50=%" PRIu64 " p99=%" PRIu64 "\n",
             h.count, h.sum, h.min,
             h.count == 0 ? 0 : h.sum / h.count, h.max, h.quantile(0.5),
             h.quantile(0.99));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out.push_back(':');
    appendU64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out.push_back(':');
    appendI64(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out += ":{\"count\":";
    appendU64(out, h.count);
    out += ",\"sum\":";
    appendU64(out, h.sum);
    out += ",\"min\":";
    appendU64(out, h.min);
    out += ",\"max\":";
    appendU64(out, h.max);
    out += ",\"buckets\":[";
    bool firstBucket = true;
    for (const auto& [lb, n] : h.buckets) {
      if (!firstBucket) out.push_back(',');
      firstBucket = false;
      out.push_back('[');
      appendU64(out, lb);
      out.push_back(',');
      appendU64(out, n);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry::Slot& MetricsRegistry::slot(const std::string& name,
                                             Kind kind) {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("MetricsRegistry: metric '" + name +
                             "' already registered as a different kind");
    return it->second;
  }
  Slot s{kind, nullptr, nullptr, nullptr};
  switch (kind) {
    case Kind::kCounter:
      s.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      s.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      s.histogram = std::make_unique<Histogram>();
      break;
  }
  return slots_.emplace(name, std::move(s)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *slot(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *slot(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *slot(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  for (const auto& [name, s] : slots_) {
    switch (s.kind) {
      case Kind::kCounter:
        snap.counters.emplace(name, s.counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace(name, s.gauge->value());
        break;
      case Kind::kHistogram:
        snap.histograms.emplace(name, s.histogram->data());
        break;
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace freqdedup::obs
