#include "trace/trace_io.h"

#include <stdexcept>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {

constexpr uint32_t kMagic = 0x46445452;  // "FDTR"
constexpr uint32_t kVersion = 1;

}  // namespace

ByteVec serializeDataset(const Dataset& dataset) {
  ByteVec out;
  putU32(out, kMagic);
  putU32(out, kVersion);
  putLengthPrefixedString(out, dataset.name);
  putVarint(out, dataset.backups.size());
  for (const auto& backup : dataset.backups) {
    putLengthPrefixedString(out, backup.label);
    putVarint(out, backup.records.size());
    for (const auto& r : backup.records) {
      putU64(out, r.fp);
      putU32(out, r.size);
    }
  }
  putU32(out, crc32c(out));
  return out;
}

Dataset parseDataset(ByteView data) {
  if (data.size() < 12) throw std::runtime_error("trace_io: input too short");
  const size_t bodySize = data.size() - 4;
  const uint32_t storedCrc = getU32(data, bodySize);
  if (crc32c(data.subspan(0, bodySize)) != storedCrc)
    throw std::runtime_error("trace_io: checksum mismatch");
  // All structural reads stay within the CRC-covered body: a crafted length
  // must not let string or record reads spill into the CRC bytes.
  const ByteView body = data.subspan(0, bodySize);

  size_t offset = 0;
  if (getU32(body, offset) != kMagic)
    throw std::runtime_error("trace_io: bad magic");
  offset += 4;
  if (getU32(body, offset) != kVersion)
    throw std::runtime_error("trace_io: unsupported version");
  offset += 4;

  Dataset dataset;
  dataset.name = getLengthPrefixedString(body, offset);
  const auto backupCount = getVarint(body, offset);
  if (!backupCount) throw std::runtime_error("trace_io: truncated header");
  // Validate counts against the remaining input *before* allocating, so a
  // corrupt count cannot trigger a huge reserve. Every backup occupies at
  // least 2 bytes (empty label varint + record count varint); division
  // avoids overflow on adversarial counts.
  if (*backupCount > (bodySize - offset) / 2)
    throw std::runtime_error("trace_io: backup count exceeds input");
  dataset.backups.reserve(static_cast<size_t>(*backupCount));
  for (uint64_t b = 0; b < *backupCount; ++b) {
    BackupTrace backup;
    backup.label = getLengthPrefixedString(body, offset);
    const auto recordCount = getVarint(body, offset);
    if (!recordCount) throw std::runtime_error("trace_io: truncated backup");
    if (*recordCount > (bodySize - offset) / 12)
      throw std::runtime_error("trace_io: truncated records");
    backup.records.reserve(static_cast<size_t>(*recordCount));
    for (uint64_t i = 0; i < *recordCount; ++i) {
      ChunkRecord r;
      r.fp = getU64(body, offset);
      offset += 8;
      r.size = getU32(body, offset);
      offset += 4;
      backup.records.push_back(r);
    }
    dataset.backups.push_back(std::move(backup));
  }
  if (offset != bodySize)
    throw std::runtime_error("trace_io: trailing garbage");
  return dataset;
}

void saveDataset(const Dataset& dataset, const std::string& path) {
  writeFile(path, serializeDataset(dataset));
}

Dataset loadDataset(const std::string& path) {
  return parseDataset(readFile(path));
}

}  // namespace freqdedup
