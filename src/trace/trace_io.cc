#include "trace/trace_io.h"

#include <stdexcept>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/varint.h"

namespace freqdedup {

namespace {

constexpr uint32_t kMagic = 0x46445452;  // "FDTR"
constexpr uint32_t kVersion = 1;

void putString(ByteVec& out, const std::string& s) {
  putVarint(out, s.size());
  appendBytes(out, ByteView(reinterpret_cast<const uint8_t*>(s.data()),
                            s.size()));
}

std::string getString(ByteView in, size_t& offset) {
  const auto len = getVarint(in, offset);
  if (!len || offset + *len > in.size())
    throw std::runtime_error("trace_io: truncated string");
  std::string s(reinterpret_cast<const char*>(in.data() + offset),
                static_cast<size_t>(*len));
  offset += static_cast<size_t>(*len);
  return s;
}

}  // namespace

ByteVec serializeDataset(const Dataset& dataset) {
  ByteVec out;
  putU32(out, kMagic);
  putU32(out, kVersion);
  putString(out, dataset.name);
  putVarint(out, dataset.backups.size());
  for (const auto& backup : dataset.backups) {
    putString(out, backup.label);
    putVarint(out, backup.records.size());
    for (const auto& r : backup.records) {
      putU64(out, r.fp);
      putU32(out, r.size);
    }
  }
  putU32(out, crc32c(out));
  return out;
}

Dataset parseDataset(ByteView data) {
  if (data.size() < 12) throw std::runtime_error("trace_io: input too short");
  const size_t bodySize = data.size() - 4;
  const uint32_t storedCrc = getU32(data, bodySize);
  if (crc32c(data.subspan(0, bodySize)) != storedCrc)
    throw std::runtime_error("trace_io: checksum mismatch");

  size_t offset = 0;
  if (getU32(data, offset) != kMagic)
    throw std::runtime_error("trace_io: bad magic");
  offset += 4;
  if (getU32(data, offset) != kVersion)
    throw std::runtime_error("trace_io: unsupported version");
  offset += 4;

  Dataset dataset;
  dataset.name = getString(data, offset);
  const auto backupCount = getVarint(data, offset);
  if (!backupCount) throw std::runtime_error("trace_io: truncated header");
  dataset.backups.reserve(static_cast<size_t>(*backupCount));
  for (uint64_t b = 0; b < *backupCount; ++b) {
    BackupTrace backup;
    backup.label = getString(data, offset);
    const auto recordCount = getVarint(data, offset);
    if (!recordCount) throw std::runtime_error("trace_io: truncated backup");
    if (offset + *recordCount * 12 > bodySize)
      throw std::runtime_error("trace_io: truncated records");
    backup.records.reserve(static_cast<size_t>(*recordCount));
    for (uint64_t i = 0; i < *recordCount; ++i) {
      ChunkRecord r;
      r.fp = getU64(data, offset);
      offset += 8;
      r.size = getU32(data, offset);
      offset += 4;
      backup.records.push_back(r);
    }
    dataset.backups.push_back(std::move(backup));
  }
  return dataset;
}

void saveDataset(const Dataset& dataset, const std::string& path) {
  writeFile(path, serializeDataset(dataset));
}

Dataset loadDataset(const std::string& path) {
  return parseDataset(readFile(path));
}

}  // namespace freqdedup
