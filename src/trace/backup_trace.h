// Backup traces: the logical chunk streams the paper's evaluation operates on.
//
// A BackupTrace is the sequence of (fingerprint, size) records of one full
// backup in logical (pre-deduplication) order — exactly what the paper's
// adversary observes (Section 3.3). A dataset is an ordered series of backups
// of the same primary data source.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup {

struct BackupTrace {
  std::string label;  // e.g. "Jan 22", "week 3"
  std::vector<ChunkRecord> records;

  [[nodiscard]] size_t chunkCount() const { return records.size(); }
  [[nodiscard]] uint64_t logicalBytes() const;
  [[nodiscard]] size_t uniqueChunkCount() const;
  [[nodiscard]] uint64_t uniqueBytes() const;
  /// Frequency of every unique fingerprint in this backup.
  [[nodiscard]] FrequencyMap frequencies() const;
  /// Fingerprint -> chunk size. (A fingerprint determines its content and
  /// hence its size; duplicate records agree by construction.)
  [[nodiscard]] SizeMap sizes() const;
};

/// A backup series from one primary data source.
struct Dataset {
  std::string name;
  std::vector<BackupTrace> backups;

  [[nodiscard]] size_t backupCount() const { return backups.size(); }
};

struct DatasetStats {
  uint64_t logicalBytes = 0;
  uint64_t logicalChunks = 0;
  uint64_t uniqueBytes = 0;
  uint64_t uniqueChunks = 0;

  /// Logical-to-physical size ratio (Section 5.1).
  [[nodiscard]] double dedupRatio() const {
    return uniqueBytes == 0 ? 0.0
                            : static_cast<double>(logicalBytes) /
                                  static_cast<double>(uniqueBytes);
  }
  /// Fraction of logical bytes eliminated by deduplication.
  [[nodiscard]] double storageSavingPct() const {
    return logicalBytes == 0
               ? 0.0
               : 100.0 * (1.0 - static_cast<double>(uniqueBytes) /
                                    static_cast<double>(logicalBytes));
  }
};

/// Deduplication statistics across all backups of a dataset.
DatasetStats computeDatasetStats(const Dataset& dataset);

/// One point of the Figure-1 curve: the fraction `cdf` of unique chunks with
/// frequency <= `frequency`.
struct FrequencyCdfPoint {
  uint64_t frequency = 0;
  double cdf = 0.0;
};

/// Frequency CDF over all unique chunks of the whole dataset (Figure 1).
std::vector<FrequencyCdfPoint> frequencyCdf(const Dataset& dataset);

/// Aggregate frequencies across an entire dataset.
FrequencyMap datasetFrequencies(const Dataset& dataset);

}  // namespace freqdedup
