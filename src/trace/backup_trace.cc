#include "trace/backup_trace.h"

#include <algorithm>

namespace freqdedup {

uint64_t BackupTrace::logicalBytes() const {
  uint64_t total = 0;
  for (const auto& r : records) total += r.size;
  return total;
}

size_t BackupTrace::uniqueChunkCount() const {
  std::unordered_map<Fp, char, FpHash> seen;
  seen.reserve(records.size());
  for (const auto& r : records) seen.emplace(r.fp, 0);
  return seen.size();
}

uint64_t BackupTrace::uniqueBytes() const {
  std::unordered_map<Fp, char, FpHash> seen;
  seen.reserve(records.size());
  uint64_t total = 0;
  for (const auto& r : records) {
    if (seen.emplace(r.fp, 0).second) total += r.size;
  }
  return total;
}

FrequencyMap BackupTrace::frequencies() const {
  FrequencyMap freq;
  freq.reserve(records.size());
  for (const auto& r : records) ++freq[r.fp];
  return freq;
}

SizeMap BackupTrace::sizes() const {
  SizeMap sizes;
  sizes.reserve(records.size());
  for (const auto& r : records) sizes.emplace(r.fp, r.size);
  return sizes;
}

DatasetStats computeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  std::unordered_map<Fp, char, FpHash> seen;
  for (const auto& backup : dataset.backups) {
    for (const auto& r : backup.records) {
      stats.logicalBytes += r.size;
      ++stats.logicalChunks;
      if (seen.emplace(r.fp, 0).second) {
        stats.uniqueBytes += r.size;
        ++stats.uniqueChunks;
      }
    }
  }
  return stats;
}

FrequencyMap datasetFrequencies(const Dataset& dataset) {
  FrequencyMap freq;
  for (const auto& backup : dataset.backups) {
    for (const auto& r : backup.records) ++freq[r.fp];
  }
  return freq;
}

std::vector<FrequencyCdfPoint> frequencyCdf(const Dataset& dataset) {
  const FrequencyMap freq = datasetFrequencies(dataset);
  std::vector<uint64_t> counts;
  counts.reserve(freq.size());
  for (const auto& [fp, count] : freq) counts.push_back(count);
  std::sort(counts.begin(), counts.end());

  std::vector<FrequencyCdfPoint> points;
  const double n = static_cast<double>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    // Emit one point per distinct frequency value (at its last occurrence).
    if (i + 1 == counts.size() || counts[i + 1] != counts[i]) {
      points.push_back({counts[i], static_cast<double>(i + 1) / n});
    }
  }
  return points;
}

}  // namespace freqdedup
