// Binary serialization of datasets, so generated traces can be cached and
// exchanged. Format: magic "FDTR", version u32, dataset name, backup count;
// per backup: label, record count, (fp u64, size u32) pairs; trailing CRC-32C
// over everything before it.
#pragma once

#include <string>

#include "trace/backup_trace.h"

namespace freqdedup {

/// Serializes a dataset to bytes.
ByteVec serializeDataset(const Dataset& dataset);

/// Parses a serialized dataset; throws std::runtime_error on corruption.
Dataset parseDataset(ByteView data);

/// File convenience wrappers.
void saveDataset(const Dataset& dataset, const std::string& path);
Dataset loadDataset(const std::string& path);

}  // namespace freqdedup
