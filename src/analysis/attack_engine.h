// The attack-analysis engine: the paper's basic, locality-based, and
// advanced inference attacks (and the MinHash-defense evaluations built on
// them) over columnar, sharded per-stream indexes.
//
// An engine is constructed from the interned ciphertext and plaintext
// streams. Frequency columns and CSR neighbor indexes are built lazily (the
// basic attack needs no neighbor tables) with the configured number of
// threads and cached across attack runs on the same engine.
//
// Determinism contract: every result is bit-identical to the legacy serial
// map-based implementation at every thread count. All ranking ties break by
// ascending fingerprint (never by internal chunk ID), parallel builds
// canonicalize intermediate orders by sorting, and the locality walk is the
// algorithm's own FIFO order. The walk itself parallelizes by generation:
// each pair's neighbor analysis is a pure function of the (immutable) CSR
// indexes, so the pending queue's analyses run concurrently while the
// state updates (inference set, queue admission) are applied serially in
// exact FIFO order — the same instruction-level outcome as the serial walk.
// tests/analysis/engine_equivalence_test.cc pins this against a frozen copy
// of the legacy implementation.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "analysis/frequency_index.h"
#include "analysis/neighbor_index.h"
#include "analysis/stream_index.h"
#include "core/attacks.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::analysis {

struct AnalysisOptions {
  /// Worker threads for index builds. Results do not depend on this value.
  uint32_t threads = 1;
  /// Memory budget + spill directory for index builds. Results do not depend
  /// on the budget either — only the build pipeline chosen does.
  AnalysisBudget budget{};
  /// Plan overrides, forwarded to every index build (kAuto = cost model).
  ComputePlan plan = ComputePlan::kAuto;
  SpillPlan spill = SpillPlan::kAuto;
};

class AttackEngine {
 public:
  AttackEngine(ChunkStreamIndex cipher, ChunkStreamIndex plain,
               AnalysisOptions options = {});

  /// Interns both record streams and wraps them in an engine.
  static AttackEngine fromRecords(std::span<const ChunkRecord> cipher,
                                  std::span<const ChunkRecord> plain,
                                  AnalysisOptions options = {});

  /// Algorithm 1 (sizeAware = the size-classified variant).
  AttackResult basicAttack(bool sizeAware);

  /// Algorithms 2 and 3 (config.sizeAware selects; config.threads is
  /// ignored — the engine's own options govern index builds).
  AttackResult localityAttack(const AttackConfig& config);

  /// Phase builders, exposed so bench/attack_throughput can time the COUNT
  /// and neighbor-build phases in isolation. Idempotent.
  void buildFrequencies();
  void buildNeighbors();

  [[nodiscard]] const ChunkStreamIndex& cipherStream() const {
    return cipher_;
  }
  [[nodiscard]] const ChunkStreamIndex& plainStream() const { return plain_; }

  ~AttackEngine();
  AttackEngine(AttackEngine&&) noexcept;
  AttackEngine& operator=(AttackEngine&&) noexcept;

 private:
  struct IdPair {
    ChunkId cipher;
    ChunkId plain;
  };

  /// Per-worker scratch for the sized neighbor analysis.
  struct Scratch {
    std::vector<std::pair<uint32_t, ChunkId>> cipher;
    std::vector<std::pair<uint32_t, ChunkId>> plain;
  };

  /// Rank-pairs the top-x chunks of both streams by global frequency
  /// (Algorithm 1), or per size class when sizeAware (Algorithm 3's
  /// CLASSIFY + per-class pairing, classes ascending).
  std::vector<IdPair> rankPairs(size_t x, bool sizeAware);

  /// One neighbor-table frequency analysis of the walk: zips the pre-ranked
  /// CSR neighbor lists of an inferred pair (per size class when
  /// sizeAware), appending at most v pairs per class to `out`. Pure:
  /// depends only on the indexes, so walk batches can compute it in
  /// parallel.
  void neighborPairs(std::span<const NeighborIndex::Entry> cipherList,
                     std::span<const NeighborIndex::Entry> plainList,
                     size_t v, bool sizeAware, Scratch& scratch,
                     std::vector<IdPair>& out) const;

  /// Worker threads the engine actually uses: options_.threads clamped to
  /// the plan override (kSerial -> 1) and, under kAuto, to the machine's
  /// real core count — an oversubscribed thread budget degrades to serial
  /// instead of paying dispatch cost for nothing.
  [[nodiscard]] uint32_t effectiveThreads() const;

  /// The engine's lazily created worker pool (nullptr when effectiveThreads
  /// is 1), shared by index builds and walk batches.
  ThreadPool* workerPool();

  /// Runs body(begin, end) over [0, n) on the engine's worker pool (inline
  /// when single-threaded or n is tiny).
  void runParallel(size_t n, const std::function<void(size_t, size_t)>& body);

  ChunkStreamIndex cipher_;
  ChunkStreamIndex plain_;
  AnalysisOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // lazily created when threads > 1

  std::optional<FrequencyIndex> cipherFreq_;
  std::optional<FrequencyIndex> plainFreq_;
  std::optional<NeighborIndex> cipherLeft_;
  std::optional<NeighborIndex> cipherRight_;
  std::optional<NeighborIndex> plainLeft_;
  std::optional<NeighborIndex> plainRight_;
};

}  // namespace freqdedup::analysis
