// Memory budgeting, spill-to-disk plumbing, and cost-model plan selection
// for the attack-index builds.
//
// The paper's frequency-analysis attacks need 10^7-10^8 unique chunks per
// stream; at that scale the index builds cannot materialize full-width
// intermediates in RAM. Every build in src/analysis/ therefore takes an
// AnalysisBudget: when the build's estimated intermediate footprint exceeds
// budget.memoryBytes, it switches to an external-memory pipeline that spills
// partitioned intermediates to files under budget.spillDir and streams them
// back shard by shard — the external-sort discipline production storage
// engines use for out-of-core index builds. Results are bit-identical to the
// in-memory build at every budget and thread count (sorting canonicalizes
// every intermediate order), which is what tests/analysis/ pins.
//
// Plan selection is a small cost model instead of a fixed record-count
// threshold: serial vs parallel is chosen from the stream size, the unique
// count, the budget, and the machine's real core count, so a thread budget
// larger than the hardware falls back to the serial plan rather than paying
// parallel setup cost for nothing (the regression BENCH_attack.json recorded
// on 1-core boxes). Tests force plans via ComputePlan/SpillPlan overrides so
// parallel and spill paths stay covered on any machine.
//
// Every build reports analysis.* metrics through the PR 6 obs registry:
// plan chosen, shard count, spill bytes/files, and peak tracked bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

namespace freqdedup::analysis {

/// Memory budget for one index build. memoryBytes bounds the build's
/// *intermediate* state (partition buffers, per-shard sort loads); the input
/// stream and the final index are the caller's to account. 0 = unlimited.
struct AnalysisBudget {
  uint64_t memoryBytes = 0;
  /// Directory for spill files; a uniquely named subdirectory is created per
  /// build and removed when the build finishes (success or failure). Empty =
  /// the system temp directory.
  std::string spillDir;
};

/// Serial-vs-parallel override. kAuto lets the cost model decide from the
/// stream size, unique count, budget, and real core count; kSerial/kParallel
/// force a plan (tests pin parallel paths with kParallel on any machine).
enum class ComputePlan : uint8_t { kAuto, kSerial, kParallel };

/// Spill override. kAuto spills only when the budget demands it; kForce
/// always takes the external-memory path (tests exercise it on tiny streams).
enum class SpillPlan : uint8_t { kAuto, kForce };

/// What a build actually did, attached to the built index (available even
/// with obs compiled out) and mirrored into the analysis.* metrics.
struct AnalysisBuildStats {
  const char* plan = "serial";  // "serial" | "parallel" | "spill"
  uint64_t shards = 1;
  uint64_t spillBytes = 0;
  uint64_t spillFiles = 0;
  uint64_t peakTrackedBytes = 0;
};

/// Cached std::thread::hardware_concurrency(), at least 1.
uint32_t hardwareThreads();

/// Chosen plan for a FrequencyIndex build. The parallel plan is shard-private
/// sub-range counting: each worker owns a disjoint ID range of the one output
/// column and rescans the stream for it, so it allocates nothing.
struct FrequencyPlanChoice {
  uint32_t workers = 1;
  [[nodiscard]] bool parallel() const { return workers > 1; }
};
FrequencyPlanChoice chooseFrequencyPlan(size_t records, size_t unique,
                                        uint32_t threads, uint32_t hwThreads,
                                        ComputePlan plan);

/// Chosen plan for a NeighborIndex build.
struct NeighborPlanChoice {
  uint32_t workers = 1;
  bool spill = false;
  size_t shards = 1;
  /// Spill path: target bytes of one shard's raw pairs held in RAM for the
  /// sort pass (shard count is derived from it).
  uint64_t shardLoadBytes = 0;
  /// Spill path: per-worker-per-shard partition write buffer, in bytes.
  uint64_t flushBufBytes = 0;
};
NeighborPlanChoice chooseNeighborPlan(size_t pairs, size_t unique,
                                      uint32_t threads, uint32_t hwThreads,
                                      const AnalysisBudget& budget,
                                      ComputePlan plan, SpillPlan spill);

/// Estimated intermediate footprint of the in-memory NeighborIndex build
/// (partition buckets + merged shard copy + degree column). Exposed so the
/// cost-model tests pin the spill decision.
uint64_t neighborInMemoryEstimate(size_t pairs, size_t unique);

/// Tracks the build's live intermediate bytes and their high-water mark.
/// Thread-safe; updates are relaxed (the peak is a metric, not a limiter).
class MemoryTracker {
 public:
  void add(uint64_t bytes) noexcept {
    const uint64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void sub(uint64_t bytes) noexcept {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII spill directory: creates a uniquely named subdirectory of `base`
/// (the system temp directory when empty) and removes it recursively on
/// destruction — spill files never outlive their build, success or failure.
/// Throws std::runtime_error when the directory cannot be created.
class SpillDir {
 public:
  explicit SpillDir(const std::string& base);
  ~SpillDir();
  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

/// Buffered append-only spill file. Any I/O failure throws
/// std::runtime_error with the path and errno text (the build's SpillDir
/// then cleans up the partial files).
class SpillFileWriter {
 public:
  explicit SpillFileWriter(const std::filesystem::path& path);
  ~SpillFileWriter();
  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  void write(const void* data, size_t bytes);
  /// Flushes and closes; further writes are invalid. Throws on flush error.
  void finish();
  [[nodiscard]] uint64_t bytesWritten() const { return bytes_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  FILE* f_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Reads a whole spill file into `out` (resized to the file's element
/// count). Throws std::runtime_error on read failure or a size that is not
/// a multiple of the element size.
void readSpillFile(const std::filesystem::path& path,
                   std::vector<uint64_t>& out);

/// Streams a spill file in bounded chunks: calls consume(data, count) with
/// successive uint64_t runs. chunkBytes bounds the read buffer.
void streamSpillFile(
    const std::filesystem::path& path, size_t chunkBytes,
    const std::function<void(const uint64_t*, size_t)>& consume);

/// Mirrors one build's stats into the global analysis.* metrics.
void reportBuildStats(const AnalysisBuildStats& stats);

}  // namespace freqdedup::analysis
