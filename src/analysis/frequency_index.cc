#include "analysis/frequency_index.h"

#include <algorithm>

#include "pipeline/thread_pool.h"

namespace freqdedup::analysis {

FrequencyIndex FrequencyIndex::build(const ChunkStreamIndex& stream,
                                     const FrequencyBuildOptions& options) {
  const std::vector<ChunkId>& ids = stream.ids();
  const size_t unique = stream.uniqueCount();
  FrequencyIndex index;
  index.counts.assign(unique, 0);
  if (ids.empty()) {
    reportBuildStats(index.stats);
    return index;
  }

  const FrequencyPlanChoice plan =
      chooseFrequencyPlan(ids.size(), unique, options.threads,
                          hardwareThreads(), options.plan);
  if (!plan.parallel()) {
    // One streaming pass, one increment per record.
    for (const ChunkId id : ids) ++index.counts[id];
    index.stats.plan = "serial";
    reportBuildStats(index.stats);
    return index;
  }

  // Shard-private sub-range counting: worker w owns counts[lo_w, hi_w) and
  // rescans the whole id column for it. The scan is sequential (prefetched,
  // cheap); the increments — the random-access cost that dominates at large
  // unique counts — split W ways into ranges that each fit closer to cache.
  // No partial columns, no reduce pass, nothing allocated. Addition
  // commutes, so any range split yields the same counts.
  const size_t ranges = plan.workers;
  const size_t rangeSize = (unique + ranges - 1) / ranges;
  parallelFor(options.pool, options.threads, ranges,
              [&](size_t begin, size_t end) {
                for (size_t r = begin; r < end; ++r) {
                  const auto lo = static_cast<ChunkId>(r * rangeSize);
                  const auto hi = static_cast<ChunkId>(
                      std::min(unique, (r + 1) * rangeSize));
                  uint64_t* counts = index.counts.data();
                  for (const ChunkId id : ids) {
                    if (id >= lo && id < hi) ++counts[id];
                  }
                }
              });
  index.stats.plan = "parallel";
  index.stats.shards = ranges;
  reportBuildStats(index.stats);
  return index;
}

FrequencyIndex FrequencyIndex::build(const ChunkStreamIndex& stream,
                                     uint32_t threads,
                                     size_t parallelThreshold,
                                     ThreadPool* pool) {
  FrequencyBuildOptions options;
  options.threads = threads;
  options.pool = pool;
  if (parallelThreshold == 0) options.plan = ComputePlan::kParallel;
  return build(stream, options);
}

std::vector<ChunkId> rankByFrequency(const FrequencyIndex& freq,
                                     const ChunkStreamIndex& stream,
                                     size_t k) {
  std::vector<ChunkId> ids(stream.uniqueCount());
  for (ChunkId id = 0; id < ids.size(); ++id) ids[id] = id;
  const FrequencyOrder cmp{&freq, &stream};
  k = std::min(k, ids.size());
  if (k < ids.size()) {
    std::partial_sort(ids.begin(),
                      ids.begin() + static_cast<ptrdiff_t>(k), ids.end(),
                      cmp);
    ids.resize(k);
  } else {
    std::sort(ids.begin(), ids.end(), cmp);
  }
  return ids;
}

SizeClassRanking rankBySizeClass(const FrequencyIndex& freq,
                                 const ChunkStreamIndex& stream,
                                 size_t perClassK) {
  const size_t unique = stream.uniqueCount();
  SizeClassRanking ranking;
  ranking.ids.resize(unique);
  for (ChunkId id = 0; id < unique; ++id) ranking.ids[id] = id;

  // Bucket by class with one cheap sort on a precomputed class column —
  // (class asc, id asc) is a deterministic total order, so the run layout
  // never depends on sort implementation details.
  std::vector<uint32_t> classOf(unique);
  for (ChunkId id = 0; id < unique; ++id)
    classOf[id] = sizeClassOf(stream.sizeOf(id));
  std::sort(ranking.ids.begin(), ranking.ids.end(),
            [&](ChunkId a, ChunkId b) {
              if (classOf[a] != classOf[b]) return classOf[a] < classOf[b];
              return a < b;
            });

  // Rank each class run by the shared frequency order; a partial sort when
  // the caller only consumes the top perClassK of each class.
  const FrequencyOrder cmp{&freq, &stream};
  for (uint32_t i = 0; i < unique;) {
    const uint32_t sizeClass = classOf[ranking.ids[i]];
    uint32_t j = i + 1;
    while (j < unique && classOf[ranking.ids[j]] == sizeClass) ++j;
    const auto begin = ranking.ids.begin() + i;
    const auto end = ranking.ids.begin() + j;
    if (perClassK < static_cast<size_t>(j - i)) {
      std::partial_sort(begin, begin + static_cast<ptrdiff_t>(perClassK),
                        end, cmp);
    } else {
      std::sort(begin, end, cmp);
    }
    ranking.classes.push_back({sizeClass, i, j});
    i = j;
  }
  return ranking;
}

}  // namespace freqdedup::analysis
