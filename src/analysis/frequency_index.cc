#include "analysis/frequency_index.h"

#include <algorithm>

#include "pipeline/thread_pool.h"

namespace freqdedup::analysis {

FrequencyIndex FrequencyIndex::build(const ChunkStreamIndex& stream,
                                     uint32_t threads,
                                     size_t parallelThreshold,
                                     ThreadPool* pool) {
  const std::vector<ChunkId>& ids = stream.ids();
  const size_t unique = stream.uniqueCount();
  FrequencyIndex index;
  index.counts.assign(unique, 0);
  if (ids.empty()) return index;

  // A serial counting pass is a single streaming read with one increment
  // per record — allocating per-worker partial columns only pays for itself
  // on streams in the multi-million-record range. Below that the engine
  // picks the serial plan regardless of the thread budget (the counts are
  // identical either way).
  if (threads <= 1 || ids.size() < parallelThreshold) {
    for (const ChunkId id : ids) ++index.counts[id];
    return index;
  }

  // Slice-and-reduce: private count column per slice (uint32 is plenty for
  // a slice's worth of occurrences), then a parallel sum over disjoint ID
  // ranges. Addition commutes, so any slicing yields the same counts. The
  // slice count is capped: each slice costs a full-width column, and past a
  // handful of slices the reduce dominates anyway.
  const size_t slices = std::min<size_t>(threads, 16);
  const size_t sliceSize = (ids.size() + slices - 1) / slices;
  std::vector<std::vector<uint32_t>> partial(
      slices, std::vector<uint32_t>(unique, 0));
  parallelFor(pool, threads, slices, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const size_t lo = s * sliceSize;
      const size_t hi = std::min(ids.size(), lo + sliceSize);
      std::vector<uint32_t>& local = partial[s];
      for (size_t i = lo; i < hi; ++i) ++local[ids[i]];
    }
  });
  parallelFor(pool, threads, unique, [&](size_t begin, size_t end) {
    for (const std::vector<uint32_t>& local : partial) {
      for (size_t id = begin; id < end; ++id)
        index.counts[id] += local[id];
    }
  });
  return index;
}

std::vector<ChunkId> rankByFrequency(const FrequencyIndex& freq,
                                     const ChunkStreamIndex& stream,
                                     size_t k) {
  std::vector<ChunkId> ids(stream.uniqueCount());
  for (ChunkId id = 0; id < ids.size(); ++id) ids[id] = id;
  const auto cmp = [&](ChunkId a, ChunkId b) {
    if (freq.counts[a] != freq.counts[b])
      return freq.counts[a] > freq.counts[b];
    return stream.fpOf(a) < stream.fpOf(b);
  };
  k = std::min(k, ids.size());
  if (k < ids.size()) {
    std::partial_sort(ids.begin(),
                      ids.begin() + static_cast<ptrdiff_t>(k), ids.end(),
                      cmp);
    ids.resize(k);
  } else {
    std::sort(ids.begin(), ids.end(), cmp);
  }
  return ids;
}

SizeClassRanking rankBySizeClass(const FrequencyIndex& freq,
                                 const ChunkStreamIndex& stream) {
  SizeClassRanking ranking;
  ranking.ids.resize(stream.uniqueCount());
  for (ChunkId id = 0; id < ranking.ids.size(); ++id) ranking.ids[id] = id;
  std::sort(ranking.ids.begin(), ranking.ids.end(),
            [&](ChunkId a, ChunkId b) {
              const uint32_t ca = sizeClassOf(stream.sizeOf(a));
              const uint32_t cb = sizeClassOf(stream.sizeOf(b));
              if (ca != cb) return ca < cb;
              if (freq.counts[a] != freq.counts[b])
                return freq.counts[a] > freq.counts[b];
              return stream.fpOf(a) < stream.fpOf(b);
            });
  for (uint32_t i = 0; i < ranking.ids.size();) {
    const uint32_t sizeClass = sizeClassOf(stream.sizeOf(ranking.ids[i]));
    uint32_t j = i + 1;
    while (j < ranking.ids.size() &&
           sizeClassOf(stream.sizeOf(ranking.ids[j])) == sizeClass) {
      ++j;
    }
    ranking.classes.push_back({sizeClass, i, j});
    i = j;
  }
  return ranking;
}

}  // namespace freqdedup::analysis
