// Fingerprint interning and the columnar chunk-stream representation the
// attack-analysis engine operates on.
//
// The legacy attack core keyed every table by 64-bit fingerprints in
// unordered_maps. At the paper's scale (10^7-10^8 unique chunks per backup)
// that layout is hostile to both cache and parallelism. The analysis
// subsystem instead interns each stream's fingerprints into dense uint32_t
// chunk IDs (first-appearance order) and stores the stream as contiguous
// columns:
//   ids    — one ChunkId per logical record (the stream itself);
//   fps    — per-ID fingerprint (the inverse of the interner);
//   sizes  — per-ID chunk size, taken from the ID's first occurrence.
// Every downstream index (frequency counts, CSR neighbor tables) is then a
// flat array indexed by ChunkId. IDs are internal: all deterministic
// tie-breaking is done on fingerprints, never on IDs, so results do not
// depend on interning order or thread count.
//
// The interner is an open-addressing flat table (linear probing over
// mix64(fp), one uint32 slot per entry, single power-of-two growth policy)
// rather than std::unordered_map: no per-node allocation, one cache line
// per probe, and a batched internAll() path that hashes and prefetches a
// block of records ahead of probing — the difference between thrashing and
// streaming when interning 10^8 records.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup::analysis {

/// Dense per-stream chunk identifier. Streams are interned independently:
/// the same fingerprint gets unrelated IDs in two different streams.
using ChunkId = uint32_t;

/// Maps fingerprints to dense ChunkIds in first-appearance order.
class FpInterner {
 public:
  /// Returns the ID of `fp`, assigning the next dense ID on first sight.
  ChunkId intern(Fp fp);

  /// Batched interning: assigns `out[i]` the ID of `records[i].fp` for the
  /// whole span. Processes fixed-size blocks — hash + prefetch the block's
  /// probe lines, then probe — so table misses overlap instead of
  /// serializing. Exactly equivalent to calling intern() in order.
  void internAll(std::span<const ChunkRecord> records,
                 std::vector<ChunkId>& out);

  [[nodiscard]] std::optional<ChunkId> idOf(Fp fp) const;
  [[nodiscard]] Fp fpOf(ChunkId id) const { return fps_[id]; }
  [[nodiscard]] uint32_t uniqueCount() const {
    return static_cast<uint32_t>(fps_.size());
  }
  /// All interned fingerprints, in first-appearance order.
  [[nodiscard]] const std::vector<Fp>& fps() const { return fps_; }

  void reserve(size_t expected);

 private:
  /// Grows the table so `entries` fit under the load-factor cap.
  void ensureCapacity(size_t entries);
  void rehash(size_t newCapacity);
  /// Probes from `slot` for `fp`; interns on first sight. The table must
  /// already have room (ensureCapacity), so probing never grows mid-block.
  ChunkId internFrom(size_t slot, Fp fp);

  /// Open-addressing table of id + 1 (0 = empty slot); the key of slot v is
  /// fps_[v - 1]. Capacity is a power of two; mask_ = capacity - 1.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;  // capacity - 1; slots_ empty <=> capacity 0
  std::vector<Fp> fps_;
};

/// A logical chunk stream in columnar form: the interned ID sequence plus
/// per-ID fingerprint and size columns.
class ChunkStreamIndex {
 public:
  ChunkStreamIndex() = default;

  /// Interns a record stream. Two passes: pass 1 batch-interns every record
  /// into the id column (prefetch-friendly), pass 2 sizes the per-ID size
  /// column exactly (the unique count is now known — no full-record-width
  /// over-reservation) and fills it from each ID's first occurrence
  /// (duplicate records agree by construction, see trace/backup_trace.h).
  static ChunkStreamIndex build(std::span<const ChunkRecord> records);

  [[nodiscard]] const std::vector<ChunkId>& ids() const { return ids_; }
  [[nodiscard]] size_t recordCount() const { return ids_.size(); }
  [[nodiscard]] uint32_t uniqueCount() const { return interner_.uniqueCount(); }
  [[nodiscard]] Fp fpOf(ChunkId id) const { return interner_.fpOf(id); }
  [[nodiscard]] uint32_t sizeOf(ChunkId id) const { return sizes_[id]; }
  [[nodiscard]] std::optional<ChunkId> idOf(Fp fp) const {
    return interner_.idOf(fp);
  }
  [[nodiscard]] const FpInterner& interner() const { return interner_; }

 private:
  FpInterner interner_;
  std::vector<ChunkId> ids_;
  std::vector<uint32_t> sizes_;
};

}  // namespace freqdedup::analysis
