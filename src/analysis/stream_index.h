// Fingerprint interning and the columnar chunk-stream representation the
// attack-analysis engine operates on.
//
// The legacy attack core keyed every table by 64-bit fingerprints in
// unordered_maps. At the paper's scale (10^7 unique chunks per backup) that
// layout is hostile to both cache and parallelism. The analysis subsystem
// instead interns each stream's fingerprints into dense uint32_t chunk IDs
// (first-appearance order) and stores the stream as contiguous columns:
//   ids    — one ChunkId per logical record (the stream itself);
//   fps    — per-ID fingerprint (the inverse of the interner);
//   sizes  — per-ID chunk size, taken from the ID's first occurrence.
// Every downstream index (frequency counts, CSR neighbor tables) is then a
// flat array indexed by ChunkId. IDs are internal: all deterministic
// tie-breaking is done on fingerprints, never on IDs, so results do not
// depend on interning order or thread count.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/fingerprint.h"

namespace freqdedup::analysis {

/// Dense per-stream chunk identifier. Streams are interned independently:
/// the same fingerprint gets unrelated IDs in two different streams.
using ChunkId = uint32_t;

/// Maps fingerprints to dense ChunkIds in first-appearance order.
class FpInterner {
 public:
  /// Returns the ID of `fp`, assigning the next dense ID on first sight.
  ChunkId intern(Fp fp);

  [[nodiscard]] std::optional<ChunkId> idOf(Fp fp) const;
  [[nodiscard]] Fp fpOf(ChunkId id) const { return fps_[id]; }
  [[nodiscard]] uint32_t uniqueCount() const {
    return static_cast<uint32_t>(fps_.size());
  }
  /// All interned fingerprints, in first-appearance order.
  [[nodiscard]] const std::vector<Fp>& fps() const { return fps_; }

  void reserve(size_t expected);

 private:
  std::unordered_map<Fp, ChunkId, FpHash> ids_;
  std::vector<Fp> fps_;
};

/// A logical chunk stream in columnar form: the interned ID sequence plus
/// per-ID fingerprint and size columns.
class ChunkStreamIndex {
 public:
  ChunkStreamIndex() = default;

  /// Interns a record stream. Single pass; sizes keep the value of each
  /// fingerprint's first occurrence (duplicate records agree by
  /// construction, see trace/backup_trace.h).
  static ChunkStreamIndex build(std::span<const ChunkRecord> records);

  [[nodiscard]] const std::vector<ChunkId>& ids() const { return ids_; }
  [[nodiscard]] size_t recordCount() const { return ids_.size(); }
  [[nodiscard]] uint32_t uniqueCount() const { return interner_.uniqueCount(); }
  [[nodiscard]] Fp fpOf(ChunkId id) const { return interner_.fpOf(id); }
  [[nodiscard]] uint32_t sizeOf(ChunkId id) const { return sizes_[id]; }
  [[nodiscard]] std::optional<ChunkId> idOf(Fp fp) const {
    return interner_.idOf(fp);
  }
  [[nodiscard]] const FpInterner& interner() const { return interner_; }

 private:
  FpInterner interner_;
  std::vector<ChunkId> ids_;
  std::vector<uint32_t> sizes_;
};

}  // namespace freqdedup::analysis
