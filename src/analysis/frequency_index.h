// The COUNT step of the attacks in columnar form: per-ChunkId occurrence
// counts plus the deterministic rankings frequency analysis pairs by.
//
// Counting parallelizes as slice-and-reduce: each worker accumulates a
// private count column over a contiguous slice of the stream, then the
// columns are summed per ID range. Integer addition commutes, so the result
// is bit-identical at every thread count.
//
// Rankings order IDs by (count desc, fingerprint asc) — the same tie-break
// the legacy map-based sortByFrequency used, so rank pairing over these
// arrays reproduces the legacy attacks exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stream_index.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::analysis {

struct FrequencyIndex {
  /// Occurrence count of every ChunkId of the stream.
  std::vector<uint64_t> counts;

  /// Streams shorter than this count serially even with a thread budget:
  /// a single streaming pass beats allocating per-worker partial columns.
  static constexpr size_t kDefaultParallelThreshold = 2u << 20;

  /// `pool` (optional) reuses a caller-owned worker pool instead of
  /// spawning threads for this call; `parallelThreshold` exists for tests
  /// that must force the parallel plan on small streams.
  static FrequencyIndex build(
      const ChunkStreamIndex& stream, uint32_t threads,
      size_t parallelThreshold = kDefaultParallelThreshold,
      ThreadPool* pool = nullptr);
};

/// Top-k IDs by (count desc, fingerprint asc). k is capped at the unique
/// count; uses a partial sort when k is a strict prefix.
std::vector<ChunkId> rankByFrequency(const FrequencyIndex& freq,
                                     const ChunkStreamIndex& stream,
                                     size_t k);

/// All IDs of a stream ranked within size classes: ordered by
/// (size class asc, count desc, fingerprint asc), with one ClassRange per
/// distinct size class. This is the columnar form of the Algorithm-3
/// CLASSIFY step (class = ceil(size / 16), see core/freq_analysis.h).
struct ClassRange {
  uint32_t sizeClass = 0;
  uint32_t begin = 0;  // index range into SizeClassRanking::ids
  uint32_t end = 0;
};

struct SizeClassRanking {
  std::vector<ChunkId> ids;
  std::vector<ClassRange> classes;  // ascending by sizeClass
};

SizeClassRanking rankBySizeClass(const FrequencyIndex& freq,
                                 const ChunkStreamIndex& stream);

}  // namespace freqdedup::analysis
