// The COUNT step of the attacks in columnar form: per-ChunkId occurrence
// counts plus the deterministic rankings frequency analysis pairs by.
//
// Counting parallelizes as shard-private sub-range counting: each worker
// owns a disjoint ID range of the single output column and rescans the
// stream for its range. No per-worker partial columns exist (the old
// slice-and-reduce plan allocated slices x unique x 4 bytes — ruinous at
// 10^8 unique), so the parallel plan allocates nothing beyond the output.
// Integer addition commutes, so the counts are bit-identical at every
// thread count and plan.
//
// Plan selection is the budget.h cost model (stream size, unique count,
// real core count) instead of a fixed record-count threshold.
//
// Rankings order IDs by (count desc, fingerprint asc) — the same tie-break
// the legacy map-based sortByFrequency used, so rank pairing over these
// arrays reproduces the legacy attacks exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/budget.h"
#include "analysis/stream_index.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::analysis {

struct FrequencyBuildOptions {
  uint32_t threads = 1;
  /// Optional caller-owned worker pool (instead of spawning per call).
  ThreadPool* pool = nullptr;
  /// Informs plan selection only — the parallel counting plan is
  /// allocation-free, so no spill path is needed here.
  AnalysisBudget budget{};
  /// kAuto: cost model; kSerial/kParallel: forced (tests, benches).
  ComputePlan plan = ComputePlan::kAuto;
};

struct FrequencyIndex {
  /// Occurrence count of every ChunkId of the stream.
  std::vector<uint64_t> counts;

  /// What the build did ("serial" or "parallel" plan).
  AnalysisBuildStats stats;

  static FrequencyIndex build(const ChunkStreamIndex& stream,
                              const FrequencyBuildOptions& options);

  /// Compatibility entry point. `parallelThreshold` 0 forces the parallel
  /// plan (tests and benches that must measure it on any machine); any other
  /// value defers to the cost model.
  static FrequencyIndex build(const ChunkStreamIndex& stream, uint32_t threads,
                              size_t parallelThreshold = 1,
                              ThreadPool* pool = nullptr);
};

/// The ranking order every frequency analysis consumes: count desc, then
/// fingerprint asc (never internal IDs — see stream_index.h). Shared by
/// rankByFrequency and the per-class ranking in rankBySizeClass.
struct FrequencyOrder {
  const FrequencyIndex* freq;
  const ChunkStreamIndex* stream;

  bool operator()(ChunkId a, ChunkId b) const {
    if (freq->counts[a] != freq->counts[b])
      return freq->counts[a] > freq->counts[b];
    return stream->fpOf(a) < stream->fpOf(b);
  }
};

/// Top-k IDs by (count desc, fingerprint asc). k is capped at the unique
/// count; uses a partial sort when k is a strict prefix.
std::vector<ChunkId> rankByFrequency(const FrequencyIndex& freq,
                                     const ChunkStreamIndex& stream,
                                     size_t k);

/// All IDs of a stream bucketed by size class: classes ascending, with one
/// ClassRange per distinct size class. This is the columnar form of the
/// Algorithm-3 CLASSIFY step (class = ceil(size / 16), see
/// core/freq_analysis.h).
struct ClassRange {
  uint32_t sizeClass = 0;
  uint32_t begin = 0;  // index range into SizeClassRanking::ids
  uint32_t end = 0;
};

struct SizeClassRanking {
  std::vector<ChunkId> ids;
  std::vector<ClassRange> classes;  // ascending by sizeClass
};

/// Ranks within each size class by (count desc, fingerprint asc). Only the
/// first min(perClassK, class size) IDs of each class run are ranked; the
/// remainder of a run is present but unordered (callers consume the ranked
/// prefix — Algorithm 3 pairs at most top-x per class). The default ranks
/// every class fully. Bucketing by class costs one cheap (class, id) sort
/// instead of the old full three-way sort that recomputed size classes
/// O(n log n) times.
SizeClassRanking rankBySizeClass(
    const FrequencyIndex& freq, const ChunkStreamIndex& stream,
    size_t perClassK = std::numeric_limits<size_t>::max());

}  // namespace freqdedup::analysis
