// CSR-style co-occurrence index: for every chunk of a stream, the counts of
// the chunks that directly precede (left) or follow (right) it.
//
// This replaces the legacy NeighborTable (unordered_map of unordered_maps)
// with two flat columns per direction — offsets[id] .. offsets[id+1] slices
// an entries array of (neighbor id, count) pairs. Each slice is pre-ranked
// by (count desc, neighbor fingerprint asc), which is exactly the order a
// neighbor-table frequency analysis consumes: the locality walk's per-pair
// analysis degenerates to zipping two prefixes, moving all ranking work into
// the parallel build.
//
// Two build pipelines, chosen by the budget.h cost model and bit-identical
// to each other at every thread count and budget (sorting canonicalizes
// every intermediate order; shard ownership is a pure function of the ID):
//
//  In-memory (fits the budget): partition packed (id, neighbor) pairs to
//  per-shard buckets (shard = id % N), concatenate + sort + run-length
//  encode each shard, prefix-sum the degrees into CSR offsets, scatter.
//
//  External-memory (budget exceeded, or SpillPlan::kForce): partition
//  streams each shard's packed pairs into a per-shard spill file under
//  AnalysisBudget{memoryBytes, spillDir}; each shard is then loaded alone,
//  sorted, run-length encoded back to a compact spill file, and finally
//  scattered into the CSR arrays — so peak intermediate memory is one
//  shard's load plus bounded partition buffers, not the whole pair stream.
//  Spill files live in a per-build directory that is removed when the build
//  finishes (success or failure); I/O errors surface as std::runtime_error.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/budget.h"
#include "analysis/stream_index.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::analysis {

struct NeighborBuildOptions {
  uint32_t threads = 1;
  /// Optional caller-owned worker pool (instead of spawning per call).
  ThreadPool* pool = nullptr;
  AnalysisBudget budget{};
  /// kAuto: cost model; kSerial/kParallel: forced (tests, benches).
  ComputePlan plan = ComputePlan::kAuto;
  /// kAuto: spill only when the budget demands it; kForce: always external.
  SpillPlan spill = SpillPlan::kAuto;
};

class NeighborIndex {
 public:
  enum class Side {
    kLeft,   // neighbors(x) = chunks seen directly before occurrences of x
    kRight,  // neighbors(x) = chunks seen directly after occurrences of x
  };

  struct Entry {
    ChunkId id = 0;       // the neighboring chunk
    uint32_t count = 0;   // co-occurrence count
  };

  NeighborIndex() = default;

  static NeighborIndex build(const ChunkStreamIndex& stream, Side side,
                             const NeighborBuildOptions& options);

  /// Compatibility entry point: cost-model plan, unlimited budget.
  static NeighborIndex build(const ChunkStreamIndex& stream, Side side,
                             uint32_t threads, ThreadPool* pool = nullptr);

  /// The neighbor list of `id`, ranked by (count desc, fingerprint asc).
  [[nodiscard]] std::span<const Entry> neighbors(ChunkId id) const {
    return {entries_.data() + offsets_[id],
            entries_.data() + offsets_[id + 1]};
  }

  [[nodiscard]] size_t entryCount() const { return entries_.size(); }

  /// What the build did: plan ("serial"/"parallel"/"spill"), shard count,
  /// spill bytes/files, peak tracked intermediate bytes.
  [[nodiscard]] const AnalysisBuildStats& buildStats() const { return stats_; }

 private:
  std::vector<uint32_t> offsets_;  // uniqueCount + 1
  std::vector<Entry> entries_;
  AnalysisBuildStats stats_;
};

}  // namespace freqdedup::analysis
