// CSR-style co-occurrence index: for every chunk of a stream, the counts of
// the chunks that directly precede (left) or follow (right) it.
//
// This replaces the legacy NeighborTable (unordered_map of unordered_maps)
// with two flat columns per direction — offsets[id] .. offsets[id+1] slices
// an entries array of (neighbor id, count) pairs. Each slice is pre-ranked
// by (count desc, neighbor fingerprint asc), which is exactly the order a
// neighbor-table frequency analysis consumes: the locality walk's per-pair
// analysis degenerates to zipping two prefixes, moving all ranking work into
// the parallel build.
//
// Build (shard = id % N, the PR 1 sharding precedent):
//   1. partition — workers scan disjoint stream slices and route each
//      adjacent (id, neighbor) pair, packed into a uint64, to the owning
//      shard's bucket;
//   2. per shard — concatenate, sort, and run-length encode the packed
//      pairs, producing per-ID degrees;
//   3. scatter — serial prefix sum over degrees fixes the CSR offsets, then
//      each shard writes its IDs' entries and ranks each slice.
// Sorting canonicalizes every intermediate order, so the index is
// bit-identical at every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/stream_index.h"

namespace freqdedup {
class ThreadPool;
}

namespace freqdedup::analysis {

class NeighborIndex {
 public:
  enum class Side {
    kLeft,   // neighbors(x) = chunks seen directly before occurrences of x
    kRight,  // neighbors(x) = chunks seen directly after occurrences of x
  };

  struct Entry {
    ChunkId id = 0;       // the neighboring chunk
    uint32_t count = 0;   // co-occurrence count
  };

  NeighborIndex() = default;

  /// `pool` (optional) reuses a caller-owned worker pool instead of
  /// spawning threads for this call.
  static NeighborIndex build(const ChunkStreamIndex& stream, Side side,
                             uint32_t threads, ThreadPool* pool = nullptr);

  /// The neighbor list of `id`, ranked by (count desc, fingerprint asc).
  [[nodiscard]] std::span<const Entry> neighbors(ChunkId id) const {
    return {entries_.data() + offsets_[id],
            entries_.data() + offsets_[id + 1]};
  }

  [[nodiscard]] size_t entryCount() const { return entries_.size(); }

 private:
  std::vector<uint32_t> offsets_;  // uniqueCount + 1
  std::vector<Entry> entries_;
};

}  // namespace freqdedup::analysis
