#include "analysis/neighbor_index.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "pipeline/thread_pool.h"

namespace freqdedup::analysis {

namespace {

constexpr uint64_t pack(ChunkId key, ChunkId val) {
  return (static_cast<uint64_t>(key) << 32) | val;
}
constexpr ChunkId packedKey(uint64_t p) {
  return static_cast<ChunkId>(p >> 32);
}
constexpr ChunkId packedVal(uint64_t p) {
  return static_cast<ChunkId>(p & 0xFFFFFFFFu);
}

/// Row ranking order: count desc, neighbor fingerprint asc — the order
/// every neighbor-table frequency analysis consumes.
struct RowRank {
  const ChunkStreamIndex* stream;
  bool operator()(const NeighborIndex::Entry& a,
                  const NeighborIndex::Entry& b) const {
    if (a.count != b.count) return a.count > b.count;
    return stream->fpOf(a.id) < stream->fpOf(b.id);
  }
};

/// Streamed spill-file scatter: consumes (packed pair, count) word pairs in
/// (key asc, val asc) order, writes each key's row into the CSR entries and
/// ranks it when the row ends. Rows never straddle shards, so one Scatterer
/// per shard is race-free.
class Scatterer {
 public:
  Scatterer(const ChunkStreamIndex& stream, NeighborIndex::Entry* entries,
            const uint32_t* offsets)
      : rank_{&stream}, entries_(entries), offsets_(offsets) {}

  void consume(const uint64_t* words, size_t n) {
    FDD_CHECK(n % 2 == 0);
    for (size_t k = 0; k < n; k += 2) {
      const uint64_t pair = words[k];
      const auto count = static_cast<uint32_t>(words[k + 1]);
      const ChunkId key = packedKey(pair);
      if (!haveKey_ || key != curKey_) {
        finishRow();
        haveKey_ = true;
        curKey_ = key;
        out_ = entries_ + offsets_[key];
        written_ = 0;
      }
      out_[written_++] = {packedVal(pair), count};
    }
  }

  void finishRow() {
    if (haveKey_) std::sort(out_, out_ + written_, rank_);
  }

 private:
  RowRank rank_;
  NeighborIndex::Entry* entries_;
  const uint32_t* offsets_;
  bool haveKey_ = false;
  ChunkId curKey_ = 0;
  NeighborIndex::Entry* out_ = nullptr;
  size_t written_ = 0;
};

/// Groups shards into consecutive waves whose summed sizes fit `waveBudget`
/// and runs each wave's shards in parallel (a wave always admits at least
/// one shard, so oversized shards still process — the budget is a target,
/// not a hard limit).
void forEachShardWave(size_t shards, const std::vector<uint64_t>& sizes,
                      uint64_t waveBudget, ThreadPool* pool, uint32_t threads,
                      const std::function<void(size_t)>& processShard) {
  size_t s = 0;
  while (s < shards) {
    size_t e = s;
    uint64_t bytes = 0;
    while (e < shards && (e == s || bytes + sizes[e] <= waveBudget)) {
      bytes += sizes[e];
      ++e;
    }
    const size_t count = e - s;
    parallelFor(pool, threads, count, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) processShard(s + i);
    });
    s = e;
  }
}

}  // namespace

NeighborIndex NeighborIndex::build(const ChunkStreamIndex& stream, Side side,
                                   uint32_t threads, ThreadPool* pool) {
  NeighborBuildOptions options;
  options.threads = threads;
  options.pool = pool;
  return build(stream, side, options);
}

NeighborIndex NeighborIndex::build(const ChunkStreamIndex& stream, Side side,
                                   const NeighborBuildOptions& options) {
  const std::vector<ChunkId>& ids = stream.ids();
  const size_t unique = stream.uniqueCount();
  NeighborIndex index;
  index.offsets_.assign(unique + 1, 0);
  if (ids.size() < 2) {
    reportBuildStats(index.stats_);
    return index;
  }

  // Pair j of the stream, j in [0, n-1): the adjacent occurrence
  // (ids[j], ids[j+1]). For the right table the key is the earlier chunk;
  // for the left table the key is the later one.
  const size_t pairs = ids.size() - 1;
  const bool keyIsLater = side == Side::kLeft;

  const NeighborPlanChoice plan =
      chooseNeighborPlan(pairs, unique, options.threads, hardwareThreads(),
                         options.budget, options.plan, options.spill);
  MemoryTracker tracker;

  const auto keyOf = [&](size_t j) {
    return keyIsLater ? ids[j + 1] : ids[j];
  };
  const auto valOf = [&](size_t j) {
    return keyIsLater ? ids[j] : ids[j + 1];
  };

  if (plan.spill) {
    // --- External-memory pipeline: partition -> spill -> per-shard
    // sort/RLE -> scatter. Peak intermediate memory is the partition
    // buffers plus one wave of shard loads, never the whole pair stream.
    const size_t shards = plan.shards;
    SpillDir dir(options.budget.spillDir);
    std::vector<std::unique_ptr<SpillFileWriter>> raw(shards);
    for (size_t s = 0; s < shards; ++s) {
      raw[s] = std::make_unique<SpillFileWriter>(
          dir.file("shard-" + std::to_string(s) + ".raw"));
    }
    const std::unique_ptr<std::mutex[]> locks(new std::mutex[shards]);

    // Phase 1: workers scan disjoint stream slices and stream each pair to
    // its key's shard file (shard = key % N) through small per-worker
    // buffers. File append order varies with scheduling; the per-shard sort
    // below canonicalizes it, so the CSR result does not.
    const size_t bufEntries =
        std::max<uint64_t>(plan.flushBufBytes / sizeof(uint64_t), 64);
    const size_t tasks = plan.workers;
    const size_t taskSize = (pairs + tasks - 1) / tasks;
    tracker.add(static_cast<uint64_t>(tasks) * shards * bufEntries *
                sizeof(uint64_t));
    parallelFor(options.pool, options.threads, tasks,
                [&](size_t begin, size_t end) {
                  std::vector<std::vector<uint64_t>> buf(shards);
                  for (auto& b : buf) b.reserve(bufEntries);
                  const auto flush = [&](size_t s) {
                    const std::lock_guard<std::mutex> lock(locks[s]);
                    raw[s]->write(buf[s].data(),
                                  buf[s].size() * sizeof(uint64_t));
                    buf[s].clear();
                  };
                  for (size_t t = begin; t < end; ++t) {
                    const size_t lo = t * taskSize;
                    const size_t hi = std::min(pairs, lo + taskSize);
                    for (size_t j = lo; j < hi; ++j) {
                      const size_t s = keyOf(j) % shards;
                      buf[s].push_back(pack(keyOf(j), valOf(j)));
                      if (buf[s].size() >= bufEntries) flush(s);
                    }
                  }
                  for (size_t s = 0; s < shards; ++s) {
                    if (!buf[s].empty()) flush(s);
                  }
                });
    tracker.sub(static_cast<uint64_t>(tasks) * shards * bufEntries *
                sizeof(uint64_t));

    std::vector<uint64_t> rawBytes(shards);
    for (size_t s = 0; s < shards; ++s) {
      raw[s]->finish();
      rawBytes[s] = raw[s]->bytesWritten();
      index.stats_.spillBytes += rawBytes[s];
    }

    // Phase 2: load one wave of shards at a time, sort, run-length encode
    // to (pair, count) spill files, and record per-ID degrees (shards own
    // disjoint ID sets, so the degree writes are race-free).
    std::vector<uint32_t> degree(unique, 0);
    tracker.add(4u * unique);
    std::vector<uint64_t> rleBytes(shards);
    const uint64_t waveBudget =
        std::max<uint64_t>(plan.shardLoadBytes, 1) * plan.workers;
    forEachShardWave(
        shards, rawBytes, waveBudget, options.pool, options.threads,
        [&](size_t s) {
          std::vector<uint64_t> mine;
          readSpillFile(raw[s]->path(), mine);
          tracker.add(mine.size() * sizeof(uint64_t));
          std::error_code ec;
          std::filesystem::remove(raw[s]->path(), ec);
          std::sort(mine.begin(), mine.end());
          SpillFileWriter rle(
              dir.file("shard-" + std::to_string(s) + ".rle"));
          std::vector<uint64_t> out;
          out.reserve(std::min<size_t>(2 * mine.size(), 1u << 16));
          for (size_t i = 0; i < mine.size();) {
            size_t j = i + 1;
            while (j < mine.size() && mine[j] == mine[i]) ++j;
            ++degree[packedKey(mine[i])];
            out.push_back(mine[i]);
            out.push_back(j - i);
            if (out.size() >= (1u << 16)) {
              rle.write(out.data(), out.size() * sizeof(uint64_t));
              out.clear();
            }
            i = j;
          }
          if (!out.empty()) {
            rle.write(out.data(), out.size() * sizeof(uint64_t));
          }
          rle.finish();
          rleBytes[s] = rle.bytesWritten();
          tracker.sub(mine.size() * sizeof(uint64_t));
        });
    for (size_t s = 0; s < shards; ++s) {
      index.stats_.spillBytes += rleBytes[s];
    }

    // Phase 3: serial prefix sum fixes the CSR offsets, then each shard's
    // RLE file streams back in bounded chunks and scatters + ranks its rows
    // (rows never straddle shards, so entry writes are race-free).
    for (size_t id = 0; id < unique; ++id) {
      index.offsets_[id + 1] = index.offsets_[id] + degree[id];
    }
    index.entries_.resize(index.offsets_[unique]);
    // Chunk size is a multiple of 16 so the two-word (pair, count) records
    // never straddle a chunk boundary. Streaming bounds memory to one chunk
    // per in-flight shard, so no wave grouping is needed here.
    const size_t chunkBytes =
        static_cast<size_t>(
            std::clamp<uint64_t>(plan.shardLoadBytes, 1u << 12, 1u << 20)) &
        ~size_t{15};
    tracker.add(static_cast<uint64_t>(chunkBytes) * plan.workers);
    parallelFor(options.pool, options.threads, shards,
                [&](size_t begin, size_t end) {
                  for (size_t s = begin; s < end; ++s) {
                    Scatterer scatter(stream, index.entries_.data(),
                                      index.offsets_.data());
                    streamSpillFile(
                        dir.file("shard-" + std::to_string(s) + ".rle"),
                        chunkBytes, [&](const uint64_t* words, size_t n) {
                          scatter.consume(words, n);
                        });
                    scatter.finishRow();
                  }
                });
    tracker.sub(static_cast<uint64_t>(chunkBytes) * plan.workers);

    index.stats_.plan = "spill";
    index.stats_.shards = shards;
    index.stats_.spillFiles = 2 * shards;
    index.stats_.peakTrackedBytes = tracker.peak();
    reportBuildStats(index.stats_);
    return index;
  }

  if (plan.workers <= 1) {
    // --- Serial in-memory fast path: one pair column, sort, RLE, scatter.
    // No bucket nesting, no merged copy.
    std::vector<uint64_t> all;
    all.reserve(pairs);
    tracker.add(pairs * sizeof(uint64_t));
    for (size_t j = 0; j < pairs; ++j) all.push_back(pack(keyOf(j), valOf(j)));
    std::sort(all.begin(), all.end());
    std::vector<uint32_t> degree(unique, 0);
    tracker.add(4u * unique);
    for (size_t i = 0; i < all.size();) {
      size_t j = i + 1;
      while (j < all.size() && all[j] == all[i]) ++j;
      ++degree[packedKey(all[i])];
      i = j;
    }
    for (size_t id = 0; id < unique; ++id) {
      index.offsets_[id + 1] = index.offsets_[id] + degree[id];
    }
    index.entries_.resize(index.offsets_[unique]);
    const RowRank rank{&stream};
    for (size_t i = 0; i < all.size();) {
      const ChunkId key = packedKey(all[i]);
      Entry* out = index.entries_.data() + index.offsets_[key];
      size_t written = 0;
      while (i < all.size() && packedKey(all[i]) == key) {
        size_t j = i + 1;
        while (j < all.size() && all[j] == all[i]) ++j;
        out[written++] = {packedVal(all[i]), static_cast<uint32_t>(j - i)};
        i = j;
      }
      std::sort(out, out + written, rank);
    }
    index.stats_.plan = "serial";
    index.stats_.peakTrackedBytes = tracker.peak();
    reportBuildStats(index.stats_);
    return index;
  }

  // --- Parallel in-memory pipeline (shard = key % N, the PR 1 sharding
  // precedent). Phase 1: route packed pairs to their key's shard.
  const size_t shards = plan.shards;
  const size_t tasks = plan.workers;
  const size_t taskSize = (pairs + tasks - 1) / tasks;
  std::vector<std::vector<std::vector<uint64_t>>> buckets(
      tasks, std::vector<std::vector<uint64_t>>(shards));
  tracker.add(pairs * sizeof(uint64_t));  // buckets hold every pair
  parallelFor(options.pool, options.threads, tasks,
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  const size_t lo = t * taskSize;
                  const size_t hi = std::min(pairs, lo + taskSize);
                  std::vector<std::vector<uint64_t>>& mine = buckets[t];
                  for (std::vector<uint64_t>& b : mine)
                    b.reserve((hi - lo) / shards + 1);
                  for (size_t j = lo; j < hi; ++j) {
                    mine[keyOf(j) % shards].push_back(
                        pack(keyOf(j), valOf(j)));
                  }
                }
              });

  // Phase 2: per shard, concatenate, canonicalize (sort) and run-length
  // encode to find per-ID degrees. Shards own disjoint ID sets, so the
  // degree writes are race-free.
  std::vector<std::vector<uint64_t>> shardPairs(shards);
  std::vector<uint32_t> degree(unique, 0);
  tracker.add(pairs * sizeof(uint64_t) + 4u * unique);  // merged copy
  parallelFor(options.pool, options.threads, shards,
              [&](size_t begin, size_t end) {
                for (size_t s = begin; s < end; ++s) {
                  std::vector<uint64_t>& mine = shardPairs[s];
                  size_t total = 0;
                  for (const auto& task : buckets) total += task[s].size();
                  mine.reserve(total);
                  for (auto& task : buckets) {
                    mine.insert(mine.end(), task[s].begin(), task[s].end());
                  }
                  std::sort(mine.begin(), mine.end());
                  for (size_t i = 0; i < mine.size();) {
                    size_t j = i + 1;
                    while (j < mine.size() && mine[j] == mine[i]) ++j;
                    ++degree[packedKey(mine[i])];
                    i = j;
                  }
                }
              });
  buckets.clear();
  buckets.shrink_to_fit();
  tracker.sub(pairs * sizeof(uint64_t));  // buckets freed

  // Phase 3: serial prefix sum fixes the CSR offsets ...
  for (size_t id = 0; id < unique; ++id) {
    index.offsets_[id + 1] = index.offsets_[id] + degree[id];
  }
  index.entries_.resize(index.offsets_[unique]);

  // ... then each shard scatters its IDs' entries and ranks each slice.
  const RowRank rank{&stream};
  parallelFor(options.pool, options.threads, shards,
              [&](size_t begin, size_t end) {
                for (size_t s = begin; s < end; ++s) {
                  const std::vector<uint64_t>& mine = shardPairs[s];
                  for (size_t i = 0; i < mine.size();) {
                    const ChunkId key = packedKey(mine[i]);
                    Entry* out = index.entries_.data() + index.offsets_[key];
                    size_t written = 0;
                    while (i < mine.size() && packedKey(mine[i]) == key) {
                      size_t j = i + 1;
                      while (j < mine.size() && mine[j] == mine[i]) ++j;
                      out[written++] = {packedVal(mine[i]),
                                        static_cast<uint32_t>(j - i)};
                      i = j;
                    }
                    std::sort(out, out + written, rank);
                  }
                }
              });
  index.stats_.plan = "parallel";
  index.stats_.shards = shards;
  index.stats_.peakTrackedBytes = tracker.peak();
  reportBuildStats(index.stats_);
  return index;
}

}  // namespace freqdedup::analysis
