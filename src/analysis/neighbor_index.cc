#include "analysis/neighbor_index.h"

#include <algorithm>

#include "common/check.h"
#include "pipeline/thread_pool.h"

namespace freqdedup::analysis {

namespace {

constexpr uint64_t pack(ChunkId key, ChunkId val) {
  return (static_cast<uint64_t>(key) << 32) | val;
}
constexpr ChunkId packedKey(uint64_t p) {
  return static_cast<ChunkId>(p >> 32);
}
constexpr ChunkId packedVal(uint64_t p) {
  return static_cast<ChunkId>(p & 0xFFFFFFFFu);
}

}  // namespace

NeighborIndex NeighborIndex::build(const ChunkStreamIndex& stream, Side side,
                                   uint32_t threads, ThreadPool* pool) {
  const std::vector<ChunkId>& ids = stream.ids();
  const size_t unique = stream.uniqueCount();
  NeighborIndex index;
  index.offsets_.assign(unique + 1, 0);
  if (ids.size() < 2) return index;

  // Pair j of the stream, j in [0, n-1): the adjacent occurrence
  // (ids[j], ids[j+1]). For the right table the key is the earlier chunk;
  // for the left table the key is the later one.
  const size_t pairs = ids.size() - 1;
  const bool keyIsLater = side == Side::kLeft;

  const size_t shards = std::max<size_t>(1, std::min<size_t>(threads, 64));
  const size_t tasks = shards;
  const size_t taskSize = (pairs + tasks - 1) / tasks;

  // Phase 1: route packed pairs to their key's shard (shard = key % N).
  std::vector<std::vector<std::vector<uint64_t>>> buckets(
      tasks, std::vector<std::vector<uint64_t>>(shards));
  parallelFor(pool, threads, tasks, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const size_t lo = t * taskSize;
      const size_t hi = std::min(pairs, lo + taskSize);
      std::vector<std::vector<uint64_t>>& mine = buckets[t];
      for (std::vector<uint64_t>& b : mine)
        b.reserve((hi - lo) / shards + 1);
      for (size_t j = lo; j < hi; ++j) {
        const ChunkId key = keyIsLater ? ids[j + 1] : ids[j];
        const ChunkId val = keyIsLater ? ids[j] : ids[j + 1];
        mine[key % shards].push_back(pack(key, val));
      }
    }
  });

  // Phase 2: per shard, canonicalize (sort) and run-length encode to find
  // per-ID degrees. Shards own disjoint ID sets, so the degree writes are
  // race-free.
  std::vector<std::vector<uint64_t>> shardPairs(shards);
  std::vector<uint32_t> degree(unique, 0);
  parallelFor(pool, threads, shards, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      std::vector<uint64_t>& mine = shardPairs[s];
      size_t total = 0;
      for (const auto& task : buckets) total += task[s].size();
      mine.reserve(total);
      for (const auto& task : buckets)
        mine.insert(mine.end(), task[s].begin(), task[s].end());
      std::sort(mine.begin(), mine.end());
      for (size_t i = 0; i < mine.size();) {
        size_t j = i + 1;
        while (j < mine.size() && mine[j] == mine[i]) ++j;
        ++degree[packedKey(mine[i])];
        i = j;
      }
    }
  });

  // Phase 3: serial prefix sum fixes the CSR offsets ...
  for (size_t id = 0; id < unique; ++id)
    index.offsets_[id + 1] = index.offsets_[id] + degree[id];
  index.entries_.resize(index.offsets_[unique]);

  // ... then each shard scatters its IDs' entries and ranks each slice by
  // (count desc, neighbor fingerprint asc) — the order every neighbor-table
  // frequency analysis consumes.
  parallelFor(pool, threads, shards, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const std::vector<uint64_t>& mine = shardPairs[s];
      for (size_t i = 0; i < mine.size();) {
        const ChunkId key = packedKey(mine[i]);
        Entry* out = index.entries_.data() + index.offsets_[key];
        size_t written = 0;
        while (i < mine.size() && packedKey(mine[i]) == key) {
          size_t j = i + 1;
          while (j < mine.size() && mine[j] == mine[i]) ++j;
          out[written++] = {packedVal(mine[i]),
                            static_cast<uint32_t>(j - i)};
          i = j;
        }
        std::sort(out, out + written, [&](const Entry& a, const Entry& b) {
          if (a.count != b.count) return a.count > b.count;
          return stream.fpOf(a.id) < stream.fpOf(b.id);
        });
      }
    }
  });
  return index;
}

}  // namespace freqdedup::analysis
