#include "analysis/budget.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "obs/metrics.h"

namespace freqdedup::analysis {

namespace {

/// Process-wide analysis-build metrics, resolved once.
struct AnalysisMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& planSerial = reg.counter("analysis.plan_serial");
  obs::Counter& planParallel = reg.counter("analysis.plan_parallel");
  obs::Counter& planSpill = reg.counter("analysis.plan_spill");
  obs::Counter& spillBytes = reg.counter("analysis.spill_bytes");
  obs::Counter& spillFiles = reg.counter("analysis.spill_files");
  obs::Counter& shards = reg.counter("analysis.shards");
  obs::Histogram& peakTracked = reg.histogram("analysis.peak_tracked_bytes");

  static AnalysisMetrics& get() {
    static AnalysisMetrics m;
    return m;
  }
};

std::string errnoText() { return std::strerror(errno); }

// Cost-model constants. The parallel counting plan rescans the stream once
// per worker, so it only pays when the count column misses cache (large
// unique) and the stream is long enough to amortize dispatch; the parallel
// neighbor partition only pays when there are enough pairs to split.
constexpr size_t kMinParallelRecords = 2u << 20;
constexpr size_t kMinParallelUnique = 1u << 16;
constexpr size_t kMinUniquePerWorker = 1024;
constexpr size_t kMinParallelPairs = 1u << 20;
constexpr size_t kMaxShards = 512;
constexpr uint64_t kMinShardLoadBytes = 4096;
constexpr uint64_t kMinFlushBufBytes = 4096;
constexpr uint64_t kMaxFlushBufBytes = 64u << 10;

}  // namespace

uint32_t hardwareThreads() {
  static const uint32_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

FrequencyPlanChoice chooseFrequencyPlan(size_t records, size_t unique,
                                        uint32_t threads, uint32_t hwThreads,
                                        ComputePlan plan) {
  FrequencyPlanChoice choice;
  if (plan == ComputePlan::kSerial) return choice;
  if (plan == ComputePlan::kParallel) {
    choice.workers = std::max(threads, 2u);
    return choice;
  }
  const uint32_t workers = std::min(threads, std::max(1u, hwThreads));
  if (workers <= 1) return choice;
  // Sub-range counting allocates nothing, so the budget never forbids it;
  // it pays when the stream is long, the count column is big enough to miss
  // cache, and every worker owns a meaningful ID range.
  if (records < kMinParallelRecords || unique < kMinParallelUnique ||
      unique < static_cast<size_t>(workers) * kMinUniquePerWorker) {
    return choice;
  }
  choice.workers = workers;
  return choice;
}

uint64_t neighborInMemoryEstimate(size_t pairs, size_t unique) {
  // Phase 1 holds every packed pair in partition buckets (8 B each); phase 2
  // concatenates each shard's pairs into a second copy before sorting; the
  // degree column adds 4 B per unique ID. The CSR entries array is the
  // build's output, not an intermediate, and is excluded (as is the input
  // stream).
  return 16u * static_cast<uint64_t>(pairs) +
         8u * static_cast<uint64_t>(unique);
}

NeighborPlanChoice chooseNeighborPlan(size_t pairs, size_t unique,
                                      uint32_t threads, uint32_t hwThreads,
                                      const AnalysisBudget& budget,
                                      ComputePlan plan, SpillPlan spill) {
  NeighborPlanChoice choice;
  const uint64_t pairsBytes = 8u * static_cast<uint64_t>(pairs);
  choice.spill = spill == SpillPlan::kForce ||
                 (budget.memoryBytes > 0 &&
                  neighborInMemoryEstimate(pairs, unique) > budget.memoryBytes);

  if (plan == ComputePlan::kSerial) {
    choice.workers = 1;
  } else if (plan == ComputePlan::kParallel) {
    choice.workers = std::clamp<uint32_t>(threads, 2, 64);
  } else {
    choice.workers = std::min({threads, std::max(1u, hwThreads), 64u});
    if (choice.workers > 1 && pairs < kMinParallelPairs) choice.workers = 1;
  }

  if (!choice.spill) {
    choice.shards = choice.workers;
    return choice;
  }

  // Spill plan: shard count follows from the per-shard sort load the budget
  // allows. A wave loads `workers` shards concurrently, so each load gets a
  // worker's share of a third of the budget (raw loads + RLE output +
  // slack), floored so tiny test budgets still shard instead of
  // degenerating to one pair per file.
  const uint64_t perLoad =
      budget.memoryBytes > 0
          ? budget.memoryBytes / (3 * std::max<uint64_t>(choice.workers, 1))
          : pairsBytes;
  choice.shardLoadBytes = std::max(perLoad, kMinShardLoadBytes);
  const uint64_t wanted =
      pairsBytes == 0 ? 1 : (pairsBytes + choice.shardLoadBytes - 1) /
                                choice.shardLoadBytes;
  choice.shards = std::clamp<uint64_t>(wanted, choice.workers, kMaxShards);

  // Partition write buffers: one per worker per shard, sized so the whole
  // buffer pool stays within a quarter of the budget.
  const uint64_t pool = budget.memoryBytes > 0
                            ? budget.memoryBytes / 4
                            : kMaxFlushBufBytes * choice.workers *
                                  choice.shards;
  choice.flushBufBytes = std::clamp(
      pool / (static_cast<uint64_t>(choice.workers) * choice.shards),
      kMinFlushBufBytes, kMaxFlushBufBytes);
  return choice;
}

SpillDir::SpillDir(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path baseDir =
      base.empty() ? fs::temp_directory_path() : fs::path(base);
  static std::atomic<uint64_t> seq{0};
  const std::string name =
      "fdd-analysis-spill-" + std::to_string(::getpid()) + "-" +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  const fs::path dir = baseDir / name;
  if (!fs::create_directories(dir, ec) || ec) {
    throw std::runtime_error("analysis spill: cannot create spill dir " +
                             dir.string() + ": " +
                             (ec ? ec.message() : "already exists"));
  }
  path_ = dir;
}

SpillDir::~SpillDir() {
  if (path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best-effort cleanup
}

SpillFileWriter::SpillFileWriter(const std::filesystem::path& path)
    : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    throw std::runtime_error("analysis spill: cannot create " +
                             path.string() + ": " + errnoText());
  }
}

SpillFileWriter::~SpillFileWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void SpillFileWriter::write(const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f_) != bytes) {
    throw std::runtime_error("analysis spill: write failed on " +
                             path_.string() + ": " + errnoText());
  }
  bytes_ += bytes;
}

void SpillFileWriter::finish() {
  if (f_ == nullptr) return;
  const bool flushOk = std::fflush(f_) == 0;
  std::fclose(f_);
  f_ = nullptr;
  if (!flushOk) {
    throw std::runtime_error("analysis spill: flush failed on " +
                             path_.string() + ": " + errnoText());
  }
}

void readSpillFile(const std::filesystem::path& path,
                   std::vector<uint64_t>& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("analysis spill: cannot open " + path.string() +
                             ": " + errnoText());
  }
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size % sizeof(uint64_t) != 0) {
    std::fclose(f);
    throw std::runtime_error("analysis spill: bad size for " + path.string());
  }
  out.resize(size / sizeof(uint64_t));
  const size_t read = std::fread(out.data(), sizeof(uint64_t), out.size(), f);
  std::fclose(f);
  if (read != out.size()) {
    throw std::runtime_error("analysis spill: short read on " +
                             path.string());
  }
}

void streamSpillFile(
    const std::filesystem::path& path, size_t chunkBytes,
    const std::function<void(const uint64_t*, size_t)>& consume) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("analysis spill: cannot open " + path.string() +
                             ": " + errnoText());
  }
  const size_t chunkWords =
      std::max<size_t>(1, chunkBytes / sizeof(uint64_t));
  std::vector<uint64_t> buf(chunkWords);
  for (;;) {
    const size_t read = std::fread(buf.data(), sizeof(uint64_t), buf.size(), f);
    if (read > 0) consume(buf.data(), read);
    if (read < buf.size()) {
      const bool err = std::ferror(f) != 0;
      std::fclose(f);
      if (err) {
        throw std::runtime_error("analysis spill: read failed on " +
                                 path.string());
      }
      return;
    }
  }
}

void reportBuildStats(const AnalysisBuildStats& stats) {
  AnalysisMetrics& m = AnalysisMetrics::get();
  const std::string_view plan = stats.plan;
  if (plan == "spill") {
    m.planSpill.add();
  } else if (plan == "parallel") {
    m.planParallel.add();
  } else {
    m.planSerial.add();
  }
  m.spillBytes.add(stats.spillBytes);
  m.spillFiles.add(stats.spillFiles);
  m.shards.add(stats.shards);
  m.peakTracked.record(stats.peakTrackedBytes);
}

}  // namespace freqdedup::analysis
