#include "analysis/stream_index.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.h"

namespace freqdedup::analysis {

namespace {

constexpr size_t kMinTableCapacity = 64;
/// Initial reserve is capped: duplicate-heavy 10^8-record streams should not
/// allocate a 10^8-slot table up front. Growth doubles from here, so the
/// total rehash work stays O(unique).
constexpr size_t kMaxInitialReserve = size_t{1} << 22;
/// Records per internAll block: hash + prefetch a block, then probe it.
constexpr size_t kInternBlock = 256;

/// Capacity needed to keep `entries` under the 7/8 load-factor cap.
constexpr bool overloaded(size_t entries, size_t capacity) {
  return entries * 8 > capacity * 7;
}

}  // namespace

void FpInterner::rehash(size_t newCapacity) {
  FDD_CHECK(std::has_single_bit(newCapacity));
  std::vector<uint32_t> fresh(newCapacity, 0);
  const size_t mask = newCapacity - 1;
  for (size_t id = 0; id < fps_.size(); ++id) {
    size_t slot = static_cast<size_t>(mix64(fps_[id])) & mask;
    while (fresh[slot] != 0) slot = (slot + 1) & mask;
    fresh[slot] = static_cast<uint32_t>(id) + 1;
  }
  slots_ = std::move(fresh);
  mask_ = mask;
}

void FpInterner::ensureCapacity(size_t entries) {
  // ids are uint32 and slots store id + 1, so the table can hold at most
  // 2^32 - 1 entries; the stream scales this library targets stay far under.
  FDD_CHECK(entries < std::numeric_limits<uint32_t>::max());
  size_t capacity = slots_.size();
  if (capacity != 0 && !overloaded(entries, capacity)) return;
  size_t wanted = std::max(capacity, kMinTableCapacity);
  while (overloaded(entries, wanted)) wanted *= 2;
  rehash(wanted);
}

ChunkId FpInterner::internFrom(size_t slot, Fp fp) {
  for (;;) {
    const uint32_t v = slots_[slot];
    if (v == 0) {
      const auto id = static_cast<ChunkId>(fps_.size());
      slots_[slot] = id + 1;
      fps_.push_back(fp);
      return id;
    }
    if (fps_[v - 1] == fp) return v - 1;
    slot = (slot + 1) & mask_;
  }
}

ChunkId FpInterner::intern(Fp fp) {
  ensureCapacity(fps_.size() + 1);
  return internFrom(static_cast<size_t>(mix64(fp)) & mask_, fp);
}

void FpInterner::internAll(std::span<const ChunkRecord> records,
                           std::vector<ChunkId>& out) {
  out.resize(records.size());
  size_t slot[kInternBlock];
  for (size_t base = 0; base < records.size(); base += kInternBlock) {
    const size_t n = std::min(kInternBlock, records.size() - base);
    // Reserve the block's worst case up front so probing never rehashes
    // mid-block (a rehash would invalidate the prefetched slots).
    ensureCapacity(fps_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      slot[i] = static_cast<size_t>(mix64(records[base + i].fp)) & mask_;
      __builtin_prefetch(&slots_[slot[i]]);
    }
    for (size_t i = 0; i < n; ++i) {
      out[base + i] = internFrom(slot[i], records[base + i].fp);
    }
  }
}

std::optional<ChunkId> FpInterner::idOf(Fp fp) const {
  if (slots_.empty()) return std::nullopt;
  size_t slot = static_cast<size_t>(mix64(fp)) & mask_;
  for (;;) {
    const uint32_t v = slots_[slot];
    if (v == 0) return std::nullopt;
    if (fps_[v - 1] == fp) return v - 1;
    slot = (slot + 1) & mask_;
  }
}

void FpInterner::reserve(size_t expected) {
  if (expected == 0) return;
  ensureCapacity(expected);
  fps_.reserve(expected);
}

ChunkStreamIndex ChunkStreamIndex::build(
    std::span<const ChunkRecord> records) {
  // ChunkIds and CSR offsets are 32-bit; the trace scales this library
  // targets (<= a few 10^8 logical chunks) fit comfortably.
  FDD_CHECK(records.size() < std::numeric_limits<uint32_t>::max());
  ChunkStreamIndex index;
  index.interner_.reserve(std::min(records.size(), kMaxInitialReserve));
  index.interner_.internAll(records, index.ids_);

  // Pass 2: the unique count is exact now, so the size column allocates
  // unique-width (not record-width). IDs first appear in ascending order,
  // so a watermark scan finds each ID's first occurrence.
  index.sizes_.resize(index.interner_.uniqueCount());
  ChunkId watermark = 0;
  for (size_t j = 0; j < records.size(); ++j) {
    if (index.ids_[j] == watermark) {
      index.sizes_[watermark] = records[j].size;
      ++watermark;
    }
  }
  return index;
}

}  // namespace freqdedup::analysis
