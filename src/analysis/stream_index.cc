#include "analysis/stream_index.h"

#include <limits>

#include "common/check.h"

namespace freqdedup::analysis {

ChunkId FpInterner::intern(Fp fp) {
  const auto [it, inserted] =
      ids_.try_emplace(fp, static_cast<ChunkId>(fps_.size()));
  if (inserted) fps_.push_back(fp);
  return it->second;
}

std::optional<ChunkId> FpInterner::idOf(Fp fp) const {
  const auto it = ids_.find(fp);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void FpInterner::reserve(size_t expected) {
  ids_.reserve(expected);
  fps_.reserve(expected);
}

ChunkStreamIndex ChunkStreamIndex::build(
    std::span<const ChunkRecord> records) {
  // ChunkIds and CSR offsets are 32-bit; the trace scales this library
  // targets (<= a few 10^8 logical chunks) fit comfortably.
  FDD_CHECK(records.size() < std::numeric_limits<uint32_t>::max());
  ChunkStreamIndex index;
  index.interner_.reserve(records.size());
  index.ids_.reserve(records.size());
  index.sizes_.reserve(records.size());
  for (const ChunkRecord& r : records) {
    const ChunkId id = index.interner_.intern(r.fp);
    if (id == index.sizes_.size()) index.sizes_.push_back(r.size);
    index.ids_.push_back(id);
  }
  return index;
}

}  // namespace freqdedup::analysis
