#include "analysis/attack_engine.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"
#include "pipeline/thread_pool.h"

namespace freqdedup::analysis {

namespace {

/// Process-wide attack-phase metrics, resolved once.
struct AttackMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram& countUs = reg.histogram("attack.count_us");
  obs::Histogram& neighborBuildUs = reg.histogram("attack.neighbor_build_us");
  obs::Histogram& basicUs = reg.histogram("attack.basic_us");
  obs::Histogram& localityUs = reg.histogram("attack.locality_us");
  obs::Counter& pairsInferred = reg.counter("attack.pairs_inferred");
  obs::Counter& rowsTouched = reg.counter("attack.rows_touched");

  static AttackMetrics& get() {
    static AttackMetrics m;
    return m;
  }
};

}  // namespace

AttackEngine::AttackEngine(ChunkStreamIndex cipher, ChunkStreamIndex plain,
                           AnalysisOptions options)
    : cipher_(std::move(cipher)),
      plain_(std::move(plain)),
      options_(options) {}

AttackEngine::~AttackEngine() = default;
AttackEngine::AttackEngine(AttackEngine&&) noexcept = default;
AttackEngine& AttackEngine::operator=(AttackEngine&&) noexcept = default;

AttackEngine AttackEngine::fromRecords(std::span<const ChunkRecord> cipher,
                                       std::span<const ChunkRecord> plain,
                                       AnalysisOptions options) {
  return {ChunkStreamIndex::build(cipher), ChunkStreamIndex::build(plain),
          options};
}

uint32_t AttackEngine::effectiveThreads() const {
  if (options_.plan == ComputePlan::kSerial) return 1;
  if (options_.plan == ComputePlan::kParallel) {
    return std::max(options_.threads, 1u);
  }
  return std::max(1u, std::min(options_.threads, hardwareThreads()));
}

ThreadPool* AttackEngine::workerPool() {
  const uint32_t threads = effectiveThreads();
  if (threads <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

void AttackEngine::runParallel(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  // Tiny ranges are not worth a round trip through the pool; running them
  // inline computes exactly the same thing.
  if (effectiveThreads() <= 1 || n < 64) {
    if (n > 0) body(0, n);
    return;
  }
  parallelFor(*workerPool(), n, body);
}

void AttackEngine::buildFrequencies() {
  if (cipherFreq_ && plainFreq_) return;
  obs::ObsSpan span(&AttackMetrics::get().countUs, "attack.count", "attack");
  FrequencyBuildOptions build;
  build.threads = effectiveThreads();
  build.pool = workerPool();
  build.budget = options_.budget;
  build.plan = options_.plan;
  if (!cipherFreq_) cipherFreq_ = FrequencyIndex::build(cipher_, build);
  if (!plainFreq_) plainFreq_ = FrequencyIndex::build(plain_, build);
}

void AttackEngine::buildNeighbors() {
  if (cipherLeft_ && cipherRight_ && plainLeft_ && plainRight_) return;
  obs::ObsSpan span(&AttackMetrics::get().neighborBuildUs,
                    "attack.neighbor_build", "attack");
  using Side = NeighborIndex::Side;
  NeighborBuildOptions build;
  build.threads = effectiveThreads();
  build.pool = workerPool();
  build.budget = options_.budget;
  build.plan = options_.plan;
  build.spill = options_.spill;
  if (!cipherLeft_) {
    cipherLeft_ = NeighborIndex::build(cipher_, Side::kLeft, build);
  }
  if (!cipherRight_) {
    cipherRight_ = NeighborIndex::build(cipher_, Side::kRight, build);
  }
  if (!plainLeft_) {
    plainLeft_ = NeighborIndex::build(plain_, Side::kLeft, build);
  }
  if (!plainRight_) {
    plainRight_ = NeighborIndex::build(plain_, Side::kRight, build);
  }
}

std::vector<AttackEngine::IdPair> AttackEngine::rankPairs(size_t x,
                                                          bool sizeAware) {
  std::vector<IdPair> pairs;
  if (!sizeAware) {
    const size_t n = std::min(
        {x, static_cast<size_t>(cipher_.uniqueCount()),
         static_cast<size_t>(plain_.uniqueCount())});
    const std::vector<ChunkId> cipherTop =
        rankByFrequency(*cipherFreq_, cipher_, n);
    const std::vector<ChunkId> plainTop =
        rankByFrequency(*plainFreq_, plain_, n);
    pairs.reserve(n);
    for (size_t i = 0; i < n; ++i)
      pairs.push_back({cipherTop[i], plainTop[i]});
    return pairs;
  }

  // Size-classified pairing (Algorithm 3): rank within each class and pair
  // the top-x ranks of every class present on both sides, classes ascending.
  // Only the top-x prefix of each class is ever consumed, so the rankings
  // partial-sort to x instead of fully ordering every class run.
  const SizeClassRanking cipherRank =
      rankBySizeClass(*cipherFreq_, cipher_, x);
  const SizeClassRanking plainRank = rankBySizeClass(*plainFreq_, plain_, x);
  size_t ci = 0, mi = 0;
  while (ci < cipherRank.classes.size() && mi < plainRank.classes.size()) {
    const ClassRange& c = cipherRank.classes[ci];
    const ClassRange& m = plainRank.classes[mi];
    if (c.sizeClass < m.sizeClass) {
      ++ci;
    } else if (m.sizeClass < c.sizeClass) {
      ++mi;
    } else {
      const size_t k = std::min({x, static_cast<size_t>(c.end - c.begin),
                                 static_cast<size_t>(m.end - m.begin)});
      for (size_t i = 0; i < k; ++i) {
        pairs.push_back({cipherRank.ids[c.begin + i],
                         plainRank.ids[m.begin + i]});
      }
      ++ci;
      ++mi;
    }
  }
  return pairs;
}

void AttackEngine::neighborPairs(
    std::span<const NeighborIndex::Entry> cipherList,
    std::span<const NeighborIndex::Entry> plainList, size_t v,
    bool sizeAware, Scratch& scratch, std::vector<IdPair>& out) const {
  if (!sizeAware) {
    const size_t k = std::min({v, cipherList.size(), plainList.size()});
    for (size_t i = 0; i < k; ++i)
      out.push_back({cipherList[i].id, plainList[i].id});
    return;
  }

  // Size-classified variant: the CSR lists are pre-ranked globally, and a
  // stable bucketing by class preserves that rank within each class, so the
  // per-class top-v is just each class run's prefix.
  scratch.cipher.clear();
  for (const NeighborIndex::Entry& e : cipherList)
    scratch.cipher.emplace_back(sizeClassOf(cipher_.sizeOf(e.id)), e.id);
  scratch.plain.clear();
  for (const NeighborIndex::Entry& e : plainList)
    scratch.plain.emplace_back(sizeClassOf(plain_.sizeOf(e.id)), e.id);
  const auto byClass = [](const std::pair<uint32_t, ChunkId>& a,
                          const std::pair<uint32_t, ChunkId>& b) {
    return a.first < b.first;
  };
  std::stable_sort(scratch.cipher.begin(), scratch.cipher.end(), byClass);
  std::stable_sort(scratch.plain.begin(), scratch.plain.end(), byClass);

  size_t ci = 0, mi = 0;
  while (ci < scratch.cipher.size() && mi < scratch.plain.size()) {
    const uint32_t cClass = scratch.cipher[ci].first;
    const uint32_t mClass = scratch.plain[mi].first;
    size_t cEnd = ci, mEnd = mi;
    while (cEnd < scratch.cipher.size() &&
           scratch.cipher[cEnd].first == cClass) {
      ++cEnd;
    }
    while (mEnd < scratch.plain.size() &&
           scratch.plain[mEnd].first == mClass) {
      ++mEnd;
    }
    if (cClass < mClass) {
      ci = cEnd;
    } else if (mClass < cClass) {
      mi = mEnd;
    } else {
      const size_t k = std::min({v, cEnd - ci, mEnd - mi});
      for (size_t i = 0; i < k; ++i) {
        out.push_back({scratch.cipher[ci + i].second,
                       scratch.plain[mi + i].second});
      }
      ci = cEnd;
      mi = mEnd;
    }
  }
}

AttackResult AttackEngine::basicAttack(bool sizeAware) {
  buildFrequencies();
  AttackMetrics& metrics = AttackMetrics::get();
  obs::ObsSpan span(&metrics.basicUs, "attack.basic", "attack");
  // Algorithm 1 passes x = max{|F_C|, |F_M|}: no cap beyond the shorter
  // side (or the class sizes in the size-aware variant).
  const size_t all = std::max(cipher_.uniqueCount(), plain_.uniqueCount());
  const std::vector<IdPair> pairs = rankPairs(all, sizeAware);
  AttackResult result;
  result.inferred.reserve(pairs.size());
  for (const IdPair& p : pairs) {
    result.inferred.emplace(cipher_.fpOf(p.cipher), plain_.fpOf(p.plain));
  }
  metrics.pairsInferred.add(result.inferred.size());
  metrics.rowsTouched.add(pairs.size());
  return result;
}

AttackResult AttackEngine::localityAttack(const AttackConfig& config) {
  FDD_CHECK_MSG(config.mode == AttackMode::kKnownPlaintext || config.u >= 1,
                "ciphertext-only mode needs u >= 1");
  buildFrequencies();
  buildNeighbors();
  AttackMetrics& metrics = AttackMetrics::get();
  obs::ObsSpan span(&metrics.localityUs, "attack.locality", "attack");

  const uint32_t cipherUnique = cipher_.uniqueCount();
  // T as dense columns: taken[c] marks an inferred ciphertext chunk, and
  // inferredPlain[c] holds its plaintext fingerprint (which may be outside
  // M entirely for leaked pairs).
  std::vector<uint8_t> taken(cipherUnique, 0);
  std::vector<Fp> inferredPlain(cipherUnique, 0);
  uint64_t inferredCount = 0;
  const auto tryInfer = [&](ChunkId c, Fp plainFp) {
    if (taken[c]) return false;  // first inference for a chunk wins
    taken[c] = 1;
    inferredPlain[c] = plainFp;
    ++inferredCount;
    return true;
  };

  // The inferred FIFO set G, as a head-indexed vector (total pushes are
  // bounded by the number of inferences, so no ring buffer is needed).
  std::vector<IdPair> g;
  size_t head = 0;

  // Initialization of G (Algorithm 2, lines 4-8).
  if (config.mode == AttackMode::kCiphertextOnly) {
    for (const IdPair& p : rankPairs(config.u, config.sizeAware)) {
      g.push_back(p);
      tryInfer(p.cipher, plain_.fpOf(p.plain));
    }
  } else {
    for (const InferredPair& p : config.leakedPairs) {
      const std::optional<ChunkId> c = cipher_.idOf(p.cipher);
      if (!c) continue;
      // Every leaked pair about C counts as known/inferred (Section 5.3.3:
      // the reported inference rate includes the leaked chunks), but only
      // pairs whose plaintext chunk also appears in M can seed the walk
      // (Algorithm 2, line 7).
      tryInfer(*c, p.plain);
      const std::optional<ChunkId> m = plain_.idOf(p.plain);
      if (m) g.push_back({*c, *m});
    }
  }

  // Main loop (Algorithm 2, lines 10-22), batched by queue generation. A
  // pair's neighbor analyses depend only on the immutable CSR indexes —
  // never on T or G — so the whole pending generation computes in parallel,
  // and the serial apply phase then consumes the results in exact FIFO
  // order, reproducing the serial walk step for step.
  AttackResult result;
  std::vector<std::vector<IdPair>> batchFound;
  while (head < g.size()) {
    const size_t batchBegin = head;
    const size_t batchSize = g.size() - head;
    if (batchFound.size() < batchSize) batchFound.resize(batchSize);

    runParallel(batchSize, [&](size_t lo, size_t hi) {
      Scratch scratch;
      for (size_t i = lo; i < hi; ++i) {
        const IdPair current = g[batchBegin + i];
        std::vector<IdPair>& found = batchFound[i];
        found.clear();
        // Left side first, then right (Algorithm 2's order).
        neighborPairs(cipherLeft_->neighbors(current.cipher),
                      plainLeft_->neighbors(current.plain), config.v,
                      config.sizeAware, scratch, found);
        neighborPairs(cipherRight_->neighbors(current.cipher),
                      plainRight_->neighbors(current.plain), config.v,
                      config.sizeAware, scratch, found);
      }
    });

    for (size_t i = 0; i < batchSize; ++i) {
      ++head;
      ++result.processedPairs;
      for (const IdPair& p : batchFound[i]) {
        if (tryInfer(p.cipher, plain_.fpOf(p.plain))) {
          // Algorithm 2 line 17: admit to G only while it has room.
          if (g.size() - head <= config.w) g.push_back(p);
        }
      }
    }
  }

  result.inferred.reserve(inferredCount);
  for (uint32_t c = 0; c < cipherUnique; ++c) {
    if (taken[c]) result.inferred.emplace(cipher_.fpOf(c), inferredPlain[c]);
  }
  metrics.pairsInferred.add(result.inferred.size());
  metrics.rowsTouched.add(result.processedPairs);
  return result;
}

}  // namespace freqdedup::analysis
